(* muerp — command-line front end for the MUERP library.

   Subcommands:
     solve       route one instance with every method and print the trees
     topology    generate a network and print its composition
     experiment  reproduce a paper figure (fig5 .. fig8b, or "all")
     simulate    Monte-Carlo-validate the analytic rate of a solution
     sweep       one-dimensional parameter sweep with a chosen method
     traffic     serve a dynamic request workload with the online engine *)

open Cmdliner
module Graph = Qnet_graph.Graph
module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
open Qnet_core

(* ------------------------------------------------------------------ *)
(* Shared command-line terms                                           *)

(* The one seed term every subcommand shares: topology generation,
   workload sampling and experiment replication seeds all derive from
   it, so a whole invocation is reproducible from this single flag. *)
let seed_t =
  let doc =
    "PRNG seed: topology generation, synthetic workloads and every \
     random choice derive from it, so equal seeds reproduce the run."
  in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let users_t =
  let doc = "Number of quantum users." in
  Arg.(value & opt int 10 & info [ "users"; "u" ] ~docv:"N" ~doc)

let switches_t =
  let doc = "Number of quantum switches." in
  Arg.(value & opt int 50 & info [ "switches"; "s" ] ~docv:"N" ~doc)

let degree_t =
  let doc = "Target average vertex degree." in
  Arg.(value & opt float 6. & info [ "degree"; "d" ] ~docv:"D" ~doc)

let qubits_t =
  let doc = "Memory qubits per switch." in
  Arg.(value & opt int 4 & info [ "qubits"; "Q" ] ~docv:"Q" ~doc)

let q_t =
  let doc = "BSM swap success probability." in
  Arg.(value & opt float 0.9 & info [ "swap-rate"; "q" ] ~docv:"Q" ~doc)

let alpha_t =
  let doc = "Fiber attenuation constant (per km-unit)." in
  Arg.(value & opt float 1e-4 & info [ "alpha" ] ~docv:"A" ~doc)

let topology_t =
  let doc =
    "Topology generator: waxman, watts-strogatz, volchenkov, grid or \
     continent (a grid of Waxman regions wired by long-haul fibers; \
     see --regions)."
  in
  Arg.(value & opt string "waxman" & info [ "topology"; "t" ] ~docv:"KIND" ~doc)

(* Hierarchical routing (see DESIGN.md, "Hierarchical routing"):
   --hier routes through the qnet_hier oracle — region partition,
   contracted gateway skeleton, corridor-restricted exact search —
   instead of whole-graph Dijkstra.  --regions sizes both the continent
   generator's tile grid and the k-means fallback partition. *)
let hier_t =
  let doc =
    "Route hierarchically: partition the network into regions, route a \
     contracted gateway skeleton, and re-run the exact search only \
     inside the chosen corridor.  Feasibility-equivalent to flat \
     routing; built for networks too large for whole-graph Dijkstra."
  in
  Arg.(value & flag & info [ "hier" ] ~doc)

let regions_t =
  let doc =
    "Region count: tiles of the $(b,continent) topology and clusters \
     of the k-means partition that --hier derives on other topologies. \
     0 (the default) autotunes to a square-root rule on the switch \
     count (about sqrt(n)/2 regions, at least 4)."
  in
  Arg.(value & opt int 0 & info [ "regions" ] ~docv:"N" ~doc)

(* 0 = autotune: region count grows with the square root of the network
   so per-region and skeleton work stay balanced (DESIGN.md,
   "Hierarchical routing").  An explicit --regions always wins. *)
let resolve_regions ~switches regions =
  if regions = 0 then Qnet_hier.Partition.auto_regions switches
  else if regions < 0 then (
    prerr_endline "regions must be >= 0";
    exit 1)
  else regions

let verbose_t =
  let doc = "Enable library debug logging on stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

(* Parallelism: replication/trial loops fan out over a domain pool.
   Results are deterministic — identical at every jobs level — because
   task seeding never depends on the schedule (see DESIGN.md,
   "Parallel runtime"). *)
let jobs_t =
  let doc =
    "Worker domains for replication and Monte-Carlo loops.  Results are \
     identical at every $(docv); 0 means one per CPU core."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

(* [None] when jobs = 1 so serial runs take the pool-free code path. *)
let with_jobs jobs f =
  let jobs =
    if jobs = 0 then Qnet_util.Pool.recommended_jobs ()
    else if jobs < 0 then (
      prerr_endline "jobs must be >= 0";
      exit 1)
    else jobs
  in
  if jobs = 1 then f None
  else Qnet_util.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let apply_verbose verbose =
  if verbose then Qnet_util.Log.setup ~level:(Some Logs.Debug)

(* Telemetry: --metrics enables the process-wide registry before the
   work runs and prints it afterwards (work counters, wall-time
   histograms with quantiles).  See the Telemetry section of DESIGN.md
   for what each metric means. *)
let metrics_t =
  let doc =
    "Collect telemetry while running and print the metrics registry \
     afterwards.  $(docv) is $(b,table), $(b,csv) or $(b,sexp); a bare \
     $(b,--metrics) prints the table."
  in
  Arg.(
    value
    & opt ~vopt:(Some "table") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let metrics_begin = function
  | None -> ()
  | Some format ->
      (match format with
      | "table" | "csv" | "sexp" -> ()
      | other ->
          prerr_endline
            ("unknown metrics format: " ^ other ^ " (expected table|csv|sexp)");
          exit 1);
      Qnet_telemetry.Metrics.set_enabled true;
      Qnet_telemetry.Metrics.reset ()

let metrics_report = function
  | None -> ()
  | Some format ->
      print_newline ();
      (match format with
      | "csv" -> print_endline (Qnet_telemetry.Export.to_csv ())
      | "sexp" ->
          print_endline
            (Qnet_util.Sexp.to_string_hum (Qnet_telemetry.Export.to_sexp ()))
      | _ ->
          print_endline "telemetry:";
          print_endline
            (Qnet_util.Table.to_string (Qnet_telemetry.Export.to_table ())))

let build_spec ~users ~switches ~degree ~qubits =
  Spec.create ~n_users:users ~n_switches:switches ~avg_degree:degree
    ~qubits_per_switch:qubits ()

let build_network ~seed ~topology ~spec =
  match Generate.of_name topology with
  | None -> Error (`Msg (Printf.sprintf "unknown topology %S" topology))
  | Some kind ->
      let rng = Qnet_util.Prng.create seed in
      Ok (Generate.run kind rng spec)

(* Like [build_network], but the continent generator also returns its
   exact tile labels so --hier can partition for free instead of
   re-deriving regions by k-means. *)
let build_network_labeled ~seed ~topology ~regions ~spec =
  if topology = "continent" then
    let params =
      { Qnet_topology.Continent.default_params with regions }
    in
    let rng = Qnet_util.Prng.create seed in
    match Qnet_topology.Continent.generate_labeled ~params rng spec with
    | g, labels -> Ok (g, Some labels)
    | exception Invalid_argument msg -> Error (`Msg msg)
  else
    Result.map (fun g -> (g, None)) (build_network ~seed ~topology ~spec)

let hier_partition ~seed ~regions g labels =
  match labels with
  | Some labels -> Qnet_hier.Partition.of_assignment g labels
  | None -> Qnet_hier.Partition.kmeans ~regions ~seed g

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let describe_tree g = function
  | None -> print_endline "  infeasible (rate 0)"
  | Some (tree : Ent_tree.t) ->
      Printf.printf "  rate %.6g (-ln rate %.4f), %d channels\n"
        (Ent_tree.rate_prob tree)
        (Ent_tree.rate_neg_log tree)
        (Ent_tree.channel_count tree);
      List.iter
        (fun (c : Channel.t) ->
          Printf.printf "    %d <-> %d : %d links, length %.0f, rate %.6g\n"
            c.src c.dst c.hops c.total_length (Channel.rate_prob c))
        tree.channels;
      ignore g

(* The optimality-gap report: every heuristic's achieved −ln rate next
   to the flow LP bound it provably cannot beat, and the relative gap
   (Muerp.optimality_gap).  Capacity-respecting outcomes compare
   against the capacity-aware bound; capacity-oblivious ones (Algorithm
   2 past the sufficient condition) against the structure-only bound —
   both directions of the comparison are valid by construction, so
   every printed gap is >= 0 unless there is a bound bug, which is
   exactly what the bench guard watches for. *)
let gap_table g params rows =
  let users = Graph.users g in
  let bound_of = function
    | Qnet_flow.Lp.Bound b -> b.Qnet_flow.Lp.neg_log
    | Qnet_flow.Lp.Disconnected | Qnet_flow.Lp.Infeasible -> infinity
  in
  let structure =
    bound_of (Qnet_flow.Lp.relax ~capacity_rows:false g params ~users)
  in
  let capacity = bound_of (Qnet_flow.Lp.relax g params ~users) in
  List.fold_left
    (fun t (name, achieved, capacity_ok) ->
      let bound = if capacity_ok then capacity else structure in
      Qnet_util.Table.add_row t
        [
          name;
          Printf.sprintf "%.6f" achieved;
          Printf.sprintf "%.6f" bound;
          Printf.sprintf "%.6f"
            (Muerp.optimality_gap ~bound_neg_log:bound
               ~achieved_neg_log:achieved);
        ])
    (Qnet_util.Table.create [ "method"; "-ln rate"; "lp bound"; "gap" ])
    rows

let solve_run verbose seed users switches degree qubits q alpha topology load
    hier regions policy_name jobs metrics =
  apply_verbose verbose;
  metrics_begin metrics;
  (* Flag validation mirrors traffic's hardened paths: conflicting
     flags are a clean one-line error, never a silently-ignored flag or
     a backtrace. *)
  (match policy_name with
  | "all" | "flow" -> ()
  | other ->
      prerr_endline ("unknown solve policy: " ^ other ^ " (expected all|flow)");
      exit 1);
  if hier && policy_name <> "all" then begin
    (* The hier oracle replaces the whole method roster; a policy
       selection under it would be silently ignored. *)
    prerr_endline "--hier cannot be combined with --policy";
    exit 1
  end;
  if load <> None && topology <> "waxman" then begin
    (* --load replaces the generated network entirely; accepting a
       topology selection (continent in particular, whose --regions
       wiring only exists at generation time) would silently ignore
       it. *)
    prerr_endline "--load cannot be combined with --topology";
    exit 1
  end;
  let regions = resolve_regions ~switches regions in
  let spec = build_spec ~users ~switches ~degree ~qubits in
  let network =
    match load with
    | Some path -> (
        (* load_graph reports parse problems as [Error] but lets I/O
           exceptions escape; a missing or unreadable file must be a
           clean CLI error, not a backtrace. *)
        match
          try
            Result.map_error
              (fun msg -> path ^ ": " ^ msg)
              (Qnet_graph.Codec.load_graph path)
          with
          (* [Sys_error] messages already name the path. *)
          | Sys_error msg -> Error msg
          | Failure msg -> Error (path ^ ": " ^ msg)
        with
        | Ok g -> Ok (g, None)
        | Error msg -> Error (`Msg msg))
    | None -> build_network_labeled ~seed ~topology ~regions ~spec
  in
  match network with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok (g, labels) ->
      let params = Params.create ~alpha ~q () in
      Format.printf "%a, seed %d@." Graph.pp g seed;
      if hier then begin
        (* Hierarchical mode exists for networks where every flat
           method is too slow, so it solves with the hier oracle only
           instead of sweeping the whole method roster. *)
        let part = hier_partition ~seed ~regions g labels in
        Format.printf "partition: %a@." Qnet_hier.Partition.pp part;
        let oracle = Qnet_hier.Oracle.create g params part in
        let capacity = Capacity.of_graph g in
        Printf.printf "hier-prim:\n";
        describe_tree g
          (Qnet_hier.Oracle.route_users oracle ~capacity
             ~users:(Graph.users g))
      end
      else if policy_name = "flow" then begin
        (* The flow optimizer alone: LP relaxation, the provable rate
           ceiling it yields, and the seeded rounding of its fractional
           optimum to an integral verified tree.  Nothing here depends
           on the pool, so output is trivially identical at every
           --jobs level. *)
        let users_l = Graph.users g in
        match Qnet_flow.Lp.relax g params ~users:users_l with
        | Qnet_flow.Lp.Disconnected ->
            print_endline
              "flow: user group disconnected over relay-capable switches \
               (provably infeasible)"
        | Qnet_flow.Lp.Infeasible ->
            print_endline "flow: LP infeasible (provably unservable)"
        | Qnet_flow.Lp.Bound bound ->
            Printf.printf
              "flow-lp-bound:\n\
              \  -ln rate %.4f (rate ceiling %.6g), %d pairs, %d pivots\n"
              bound.Qnet_flow.Lp.neg_log bound.Qnet_flow.Lp.rate
              (Array.length bound.Qnet_flow.Lp.pairs)
              bound.Qnet_flow.Lp.pivots;
            let capacity = Capacity.of_graph g in
            Printf.printf "flow-rounding:\n";
            let tree =
              Qnet_flow.Rounding.round ~seed g params ~capacity
                ~users:users_l ~bound
            in
            describe_tree g tree;
            let achieved =
              match tree with
              | Some t -> Ent_tree.rate_neg_log t
              | None -> infinity
            in
            print_endline "optimality gap vs LP bound:";
            print_endline
              (Qnet_util.Table.to_string
                 (gap_table g params [ ("flow", achieved, true) ]))
      end
      else begin
        let inst = Muerp.instance ~params g in
        let heuristics = Array.of_list Muerp.all_heuristics in
        (* Each method draws from its own seed-derived stream, so the
           roster parallelises without any cross-method RNG coupling —
           the output is identical at every --jobs level. *)
        let solve_one i =
          Muerp.solve ~rng:(Qnet_util.Prng.create seed) heuristics.(i) inst
        in
        let outcomes =
          with_jobs jobs (fun pool ->
              match pool with
              | Some pool ->
                  Qnet_util.Pool.parallel_map pool
                    (Array.length heuristics)
                    solve_one
              | None -> Array.init (Array.length heuristics) solve_one)
        in
        Array.iteri
          (fun i (outcome : Muerp.outcome) ->
            Printf.printf "%s:\n" (Muerp.algorithm_name heuristics.(i));
            describe_tree g outcome.tree)
          outcomes;
        Printf.printf "e-q-cast:\n";
        let eqcast = Qnet_baselines.Eqcast.solve g params in
        describe_tree g eqcast;
        Printf.printf "n-fusion:\n";
        (match Qnet_baselines.Nfusion.solve g params with
        | None -> print_endline "  infeasible (rate 0)"
        | Some r ->
            Printf.printf "  rate %.6g via center %d (fusion -ln %.4f)\n"
              r.total_rate r.center r.fusion_neg_log);
        (* The gap report: n-fusion is absent because its fused-star
           rate model is not the Eq. (2) tree objective the LP
           relaxes. *)
        let rows =
          Array.to_list
            (Array.mapi
               (fun i (o : Muerp.outcome) ->
                 ( Muerp.algorithm_name heuristics.(i),
                   o.Muerp.neg_log_rate,
                   Muerp.outcome_capacity_ok inst o ))
               outcomes)
          @ [
              ( "e-q-cast",
                (match eqcast with
                | Some t -> Ent_tree.rate_neg_log t
                | None -> infinity),
                true );
            ]
        in
        print_endline "optimality gap vs LP bound:";
        print_endline (Qnet_util.Table.to_string (gap_table g params rows))
      end;
      metrics_report metrics

let solve_cmd =
  let load_t =
    let doc = "Load the network from this file instead of generating one." in
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)
  in
  let policy_t =
    let doc =
      "What to solve with: $(b,all) (the full method roster plus the \
       optimality-gap report) or $(b,flow) (the LP relaxation bound and \
       its randomized rounding alone)."
    in
    Arg.(value & opt string "all" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let info = Cmd.info "solve" ~doc:"Solve one MUERP instance with every method." in
  Cmd.v info
    Term.(
      const solve_run $ verbose_t $ seed_t $ users_t $ switches_t $ degree_t
      $ qubits_t $ q_t $ alpha_t $ topology_t $ load_t $ hier_t $ regions_t
      $ policy_t $ jobs_t $ metrics_t)

(* ------------------------------------------------------------------ *)
(* topology                                                            *)

let topology_run seed users switches degree qubits topology save =
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      (match save with
      | None -> ()
      | Some path ->
          Qnet_graph.Codec.save_graph path g;
          Printf.printf "saved to %s\n" path);
      Format.printf "%a@." Graph.pp g;
      Printf.printf "users: %s\n"
        (String.concat ", " (List.map string_of_int (Graph.users g)));
      Printf.printf "connected: %b; users connected: %b\n"
        (Qnet_graph.Paths.is_connected g)
        (Qnet_graph.Paths.users_connected g);
      let lengths =
        Graph.fold_edges g ~init:[] ~f:(fun acc e -> e.Graph.length :: acc)
      in
      let s = Qnet_util.Stats.summarize (Array.of_list lengths) in
      Printf.printf
        "fiber lengths: mean %.0f, median %.0f, min %.0f, max %.0f\n"
        s.Qnet_util.Stats.mean s.Qnet_util.Stats.median s.Qnet_util.Stats.min
        s.Qnet_util.Stats.max;
      Format.printf "structure: %a@." Qnet_topology.Analysis.pp_summary
        (Qnet_topology.Analysis.summarize g)

let topology_cmd =
  let save_t =
    let doc = "Write the generated network to this file (s-expression)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let info = Cmd.info "topology" ~doc:"Generate a network and describe it." in
  Cmd.v info
    Term.(
      const topology_run $ seed_t $ users_t $ switches_t $ degree_t $ qubits_t
      $ topology_t $ save_t)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_run figure replications jobs csv metrics =
  metrics_begin metrics;
  let cfg = Qnet_experiments.Config.create ~replications () in
  let module F = Qnet_experiments.Figures in
  let module R = Qnet_experiments.Report in
  let print s =
    print_endline (R.series_to_string s);
    match csv with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (R.series_to_csv s);
            output_char oc '\n');
        Printf.printf "csv written to %s\n" path
  in
  with_jobs jobs (fun pool ->
      match figure with
      | "all" ->
          let series = F.all ?pool ~cfg () in
          List.iter print series;
          print_endline
            (Qnet_util.Table.to_string
               (R.headlines_table (F.headlines series)))
      | "fig5" -> print (F.fig5 ?pool ~cfg ())
      | "fig6a" -> print (F.fig6a ?pool ~cfg ())
      | "fig6b" -> print (F.fig6b ?pool ~cfg ())
      | "fig7a" -> print (F.fig7a ?pool ~cfg ())
      | "fig7b" -> print (F.fig7b ?pool ~cfg ())
      | "fig8a" -> print (F.fig8a ?pool ~cfg ())
      | "fig8b" -> print (F.fig8b ?pool ~cfg ())
      | other ->
          prerr_endline ("unknown figure: " ^ other);
          exit 1);
  metrics_report metrics

let experiment_cmd =
  let figure_t =
    let doc = "Figure to reproduce: fig5..fig8b, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc)
  in
  let replications_t =
    let doc = "Random networks averaged per data point." in
    Arg.(value & opt int 20 & info [ "replications"; "r" ] ~docv:"N" ~doc)
  in
  let csv_t =
    let doc = "Also write the series as CSV to this file (single figures only)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let info = Cmd.info "experiment" ~doc:"Reproduce a paper figure." in
  Cmd.v info
    Term.(
      const experiment_run $ figure_t $ replications_t $ jobs_t $ csv_t
      $ metrics_t)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_run seed users switches degree qubits q alpha topology trials
    jobs metrics =
  metrics_begin metrics;
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let params = Params.create ~alpha ~q () in
      let inst = Muerp.instance ~params g in
      let outcome = Muerp.solve Conflict_free inst in
      (match outcome.tree with
      | None -> print_endline "instance infeasible; nothing to simulate"
      | Some tree ->
          let rng = Qnet_util.Prng.create (seed + 1_000_003) in
          let est =
            with_jobs jobs (fun pool ->
                Qnet_sim.Monte_carlo.estimate_rate ?pool rng g params tree
                  ~trials)
          in
          Printf.printf
            "analytic rate  %.6g\nempirical rate %.6g (%d/%d successes)\n\
             wilson 95%% CI [%.6g, %.6g] — analytic %s\n"
            est.analytic est.p_hat est.successes est.trials est.ci_low
            est.ci_high
            (if est.within_ci then "inside CI" else "OUTSIDE CI"));
      metrics_report metrics

let simulate_cmd =
  let trials_t =
    let doc = "Monte-Carlo trials." in
    Arg.(value & opt int 200_000 & info [ "trials"; "n" ] ~docv:"N" ~doc)
  in
  let info =
    Cmd.info "simulate"
      ~doc:"Monte-Carlo-validate the analytic rate of a routed solution."
  in
  Cmd.v info
    Term.(
      const simulate_run $ seed_t $ users_t $ switches_t $ degree_t $ qubits_t
      $ q_t $ alpha_t $ topology_t $ trials_t $ jobs_t $ metrics_t)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_run seed parameter values replications jobs csv metrics =
  metrics_begin metrics;
  let module C = Qnet_experiments.Config in
  let module R = Qnet_experiments.Runner in
  let create = C.create ~base_seed:seed in
  let parse_values () =
    String.split_on_char ',' values
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map String.trim
  in
  let configs =
    match parameter with
    | "users" ->
        List.map
          (fun v ->
            let n = int_of_string v in
            ( v,
              create
                ~spec:(Spec.create ~n_users:n ())
                ~replications () ))
          (parse_values ())
    | "switches" ->
        List.map
          (fun v ->
            let n = int_of_string v in
            (v, create ~spec:(Spec.create ~n_switches:n ()) ~replications ()))
          (parse_values ())
    | "degree" ->
        List.map
          (fun v ->
            let d = float_of_string v in
            (v, create ~spec:(Spec.create ~avg_degree:d ()) ~replications ()))
          (parse_values ())
    | "qubits" ->
        List.map
          (fun v ->
            let n = int_of_string v in
            ( v,
              create
                ~spec:(Spec.create ~qubits_per_switch:n ())
                ~replications () ))
          (parse_values ())
    | "q" ->
        List.map
          (fun v ->
            let q = float_of_string v in
            (v, create ~params:(Params.create ~q ()) ~replications ()))
          (parse_values ())
    | other ->
        prerr_endline
          ("unknown parameter: " ^ other
         ^ " (expected users|switches|degree|qubits|q)");
        exit 1
  in
  let t =
    with_jobs jobs (fun pool ->
        List.fold_left
          (fun t (label, cfg) ->
            let rates = R.mean_rates (R.run_config ?pool cfg) in
            Qnet_util.Table.add_float_row t label (List.map snd rates))
          (Qnet_util.Table.create
             (parameter :: List.map (fun m -> R.method_name m) R.all_methods))
          configs)
  in
  print_endline (Qnet_util.Table.to_string t);
  (match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Qnet_util.Table.to_csv t));
      Printf.printf "csv written to %s\n" path);
  metrics_report metrics

let sweep_cmd =
  let parameter_t =
    let doc = "Parameter to sweep: users, switches, degree, qubits or q." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PARAM" ~doc)
  in
  let values_t =
    let doc = "Comma-separated values." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUES" ~doc)
  in
  let replications_t =
    let doc = "Random networks averaged per data point." in
    Arg.(value & opt int 20 & info [ "replications"; "r" ] ~docv:"N" ~doc)
  in
  let csv_t =
    let doc = "Also write the sweep table as CSV to this file." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let info = Cmd.info "sweep" ~doc:"One-dimensional parameter sweep." in
  Cmd.v info
    Term.(
      const sweep_run $ seed_t $ parameter_t $ values_t $ replications_t
      $ jobs_t $ csv_t $ metrics_t)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot_run seed users switches degree qubits topology highlight =
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let highlight_paths =
        if not highlight then []
        else
          match (Muerp.solve Muerp.Conflict_free (Muerp.instance g)).tree with
          | None -> []
          | Some tree ->
              List.map (fun (c : Channel.t) -> c.path) tree.Ent_tree.channels
      in
      print_string (Qnet_graph.Dot.to_dot ~highlight_paths g)

let dot_cmd =
  let highlight_t =
    let doc = "Overlay the conflict-free solution's channels." in
    Arg.(value & flag & info [ "highlight" ] ~doc)
  in
  let info =
    Cmd.info "dot" ~doc:"Emit the network as a Graphviz DOT document."
  in
  Cmd.v info
    Term.(
      const dot_run $ seed_t $ users_t $ switches_t $ degree_t $ qubits_t
      $ topology_t $ highlight_t)

(* ------------------------------------------------------------------ *)
(* svg                                                                 *)

let svg_run seed users switches degree qubits topology highlight output =
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let highlight_paths =
        if not highlight then []
        else
          match (Muerp.solve Muerp.Conflict_free (Muerp.instance g)).tree with
          | None -> []
          | Some tree ->
              List.map (fun (c : Channel.t) -> c.path) tree.Ent_tree.channels
      in
      let title =
        Printf.sprintf "%d users / %d switches (%s, seed %d)" users switches
          topology seed
      in
      (match output with
      | None ->
          print_string (Qnet_graph.Svg.render ~highlight_paths ~title g)
      | Some path ->
          Qnet_graph.Svg.save ~highlight_paths ~title path g;
          Printf.printf "wrote %s\n" path)

let svg_cmd =
  let highlight_t =
    let doc = "Overlay the conflict-free solution's channels." in
    Arg.(value & flag & info [ "highlight" ] ~doc)
  in
  let output_t =
    let doc = "Write the SVG to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let info =
    Cmd.info "svg" ~doc:"Render the network as a standalone SVG image."
  in
  Cmd.v info
    Term.(
      const svg_run $ seed_t $ users_t $ switches_t $ degree_t $ qubits_t
      $ topology_t $ highlight_t $ output_t)

(* ------------------------------------------------------------------ *)
(* fidelity                                                            *)

let fidelity_run seed users switches degree qubits q alpha topology f0
    threshold =
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let params = Params.create ~alpha ~q () in
      let config = { Fidelity.f0; threshold } in
      (match Fidelity.max_hops ~f0 ~threshold ~max_considered:64 with
      | None ->
          Printf.printf
            "threshold %.3f unreachable even for 1-hop channels at f0 %.3f\n"
            threshold f0
      | Some h -> Printf.printf "fidelity budget: at most %d links/channel\n" h);
      let unconstrained = Muerp.solve Muerp.Conflict_free (Muerp.instance ~params g) in
      Printf.printf "unconstrained alg3 rate: %.6g\n" unconstrained.Muerp.rate;
      (match Fidelity.solve_kruskal g params config with
      | None -> print_endline "fidelity-aware kruskal: infeasible"
      | Some tree ->
          Printf.printf
            "fidelity-aware kruskal: rate %.6g, min channel fidelity %.4f\n"
            (Ent_tree.rate_prob tree)
            (Fidelity.tree_min_fidelity ~f0 tree));
      match Fidelity.solve_prim g params config with
      | None -> print_endline "fidelity-aware prim: infeasible"
      | Some tree ->
          Printf.printf
            "fidelity-aware prim: rate %.6g, min channel fidelity %.4f\n"
            (Ent_tree.rate_prob tree)
            (Fidelity.tree_min_fidelity ~f0 tree)

let fidelity_cmd =
  let f0_t =
    let doc = "Fidelity of a freshly generated link pair." in
    Arg.(value & opt float 0.98 & info [ "f0" ] ~docv:"F" ~doc)
  in
  let threshold_t =
    let doc = "Minimum acceptable end-to-end channel fidelity." in
    Arg.(value & opt float 0.9 & info [ "threshold" ] ~docv:"F" ~doc)
  in
  let info =
    Cmd.info "fidelity" ~doc:"Fidelity-aware routing (Werner-state model)."
  in
  Cmd.v info
    Term.(
      const fidelity_run $ seed_t $ users_t $ switches_t $ degree_t $ qubits_t
      $ q_t $ alpha_t $ topology_t $ f0_t $ threshold_t)

(* ------------------------------------------------------------------ *)
(* groups                                                              *)

let groups_run seed switches degree qubits q alpha topology n_groups
    group_size round_robin =
  let users = n_groups * group_size in
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let params = Params.create ~alpha ~q () in
      let all_users = Graph.users g in
      let rec chunk = function
        | [] -> []
        | l ->
            let rec take n = function
              | [] -> ([], [])
              | x :: rest when n > 0 ->
                  let a, b = take (n - 1) rest in
                  (x :: a, b)
              | rest -> ([], rest)
            in
            let head, tail = take group_size l in
            head :: chunk tail
      in
      let groups = List.filter (fun c -> c <> []) (chunk all_users) in
      let strategy =
        if round_robin then Multi_group.Round_robin else Multi_group.Sequential
      in
      let r = Multi_group.solve ~strategy g params ~groups in
      Printf.printf "%d groups of %d users, strategy %s\n" n_groups group_size
        (if round_robin then "round-robin" else "sequential");
      List.iteri
        (fun i (gr : Multi_group.group_result) ->
          Printf.printf "  group %d {%s}: %s\n" i
            (String.concat ", " (List.map string_of_int gr.Multi_group.group))
            (match gr.Multi_group.tree with
            | None -> "unserved"
            | Some _ -> Printf.sprintf "rate %.6g" gr.Multi_group.rate))
        r.Multi_group.groups;
      Printf.printf "all served: %b; min rate %.6g\n"
        r.Multi_group.all_feasible r.Multi_group.min_rate

let groups_cmd =
  let n_groups_t =
    let doc = "Number of independent entanglement groups." in
    Arg.(value & opt int 3 & info [ "groups"; "g" ] ~docv:"N" ~doc)
  in
  let group_size_t =
    let doc = "Users per group." in
    Arg.(value & opt int 3 & info [ "group-size"; "k" ] ~docv:"N" ~doc)
  in
  let round_robin_t =
    let doc = "Use round-robin allocation instead of sequential." in
    Arg.(value & flag & info [ "round-robin" ] ~doc)
  in
  let info =
    Cmd.info "groups"
      ~doc:"Concurrently route several independent entanglement groups."
  in
  Cmd.v info
    Term.(
      const groups_run $ seed_t $ switches_t $ degree_t $ qubits_t $ q_t
      $ alpha_t $ topology_t $ n_groups_t $ group_size_t $ round_robin_t)

(* ------------------------------------------------------------------ *)
(* reference                                                           *)

let reference_run seed name users qubits q alpha =
  match List.assoc_opt name Qnet_topology.Reference_nets.all with
  | None ->
      prerr_endline ("unknown reference network: " ^ name);
      exit 1
  | Some net ->
      let rng = Qnet_util.Prng.create seed in
      let g =
        Qnet_topology.Reference_nets.build rng net ~n_users:users
          ~qubits_per_switch:qubits ~user_qubits:1_000_000
      in
      let params = Params.create ~alpha ~q () in
      Format.printf "%s: %a@." name Graph.pp g;
      List.iter
        (fun alg ->
          let o = Muerp.solve alg (Muerp.instance ~params g) in
          Printf.printf "  %-22s rate %.6g\n" (Muerp.algorithm_name alg)
            o.Muerp.rate)
        Muerp.all_heuristics

let reference_cmd =
  let name_t =
    let doc = "Reference topology: nsfnet or arpanet." in
    Arg.(value & pos 0 string "nsfnet" & info [] ~docv:"NAME" ~doc)
  in
  let info =
    Cmd.info "reference" ~doc:"Route on a reference WAN topology."
  in
  Cmd.v info
    Term.(
      const reference_run $ seed_t $ name_t $ users_t $ qubits_t $ q_t
      $ alpha_t)

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

let schedule_run verbose seed users switches degree qubits q alpha topology n
    mean_gap max_group queue_slots metrics =
  apply_verbose verbose;
  metrics_begin metrics;
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network ~seed ~topology ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok g ->
      let params = Params.create ~alpha ~q () in
      let rng = Qnet_util.Prng.create (seed + 77) in
      let requests =
        Qnet_sim.Scheduler.random_requests rng g ~n ~mean_gap ~max_group
          ~duration_range:(3, 8)
      in
      let policy =
        if queue_slots > 0 then Qnet_sim.Scheduler.Queue queue_slots
        else Qnet_sim.Scheduler.Drop
      in
      let stats, outcomes = Qnet_sim.Scheduler.run ~policy g params ~requests in
      Printf.printf
        "%d requests: %d accepted, %d rejected (ratio %.2f)\n\
         mean accepted rate %.4g, mean wait %.2f slots, peak qubits in use %d\n"
        stats.Qnet_sim.Scheduler.arrived stats.Qnet_sim.Scheduler.accepted
        stats.Qnet_sim.Scheduler.rejected
        stats.Qnet_sim.Scheduler.acceptance_ratio
        stats.Qnet_sim.Scheduler.mean_accepted_rate
        stats.Qnet_sim.Scheduler.mean_wait_slots
        stats.Qnet_sim.Scheduler.peak_qubits_in_use;
      List.iter
        (fun (o : Qnet_sim.Scheduler.outcome) ->
          let r = o.Qnet_sim.Scheduler.request in
          match o.Qnet_sim.Scheduler.disposition with
          | Qnet_sim.Scheduler.Accepted { slot; rate; _ } ->
              Printf.printf
                "  #%-3d arrive %3d  users {%s}  ACCEPT @%d  rate %.4g\n"
                r.Qnet_sim.Scheduler.id r.Qnet_sim.Scheduler.arrival
                (String.concat ","
                   (List.map string_of_int r.Qnet_sim.Scheduler.users))
                slot rate
          | Qnet_sim.Scheduler.Rejected { slot } ->
              Printf.printf "  #%-3d arrive %3d  users {%s}  REJECT @%d\n"
                r.Qnet_sim.Scheduler.id r.Qnet_sim.Scheduler.arrival
                (String.concat ","
                   (List.map string_of_int r.Qnet_sim.Scheduler.users))
                slot)
        outcomes;
      metrics_report metrics

let schedule_cmd =
  let n_t =
    let doc = "Number of synthetic requests." in
    Arg.(value & opt int 20 & info [ "requests"; "n" ] ~docv:"N" ~doc)
  in
  let gap_t =
    let doc = "Mean inter-arrival gap in slots." in
    Arg.(value & opt float 2. & info [ "gap" ] ~docv:"SLOTS" ~doc)
  in
  let group_t =
    let doc = "Largest request group size." in
    Arg.(value & opt int 4 & info [ "max-group" ] ~docv:"N" ~doc)
  in
  let queue_t =
    let doc = "Queue patience in slots (0 = drop immediately)." in
    Arg.(value & opt int 5 & info [ "queue" ] ~docv:"SLOTS" ~doc)
  in
  let info =
    Cmd.info "schedule"
      ~doc:"Run the online admission controller over a synthetic workload."
  in
  Cmd.v info
    Term.(
      const schedule_run $ verbose_t $ seed_t $ users_t $ switches_t
      $ degree_t $ qubits_t $ q_t $ alpha_t $ topology_t $ n_t $ gap_t
      $ group_t $ queue_t $ metrics_t)

(* ------------------------------------------------------------------ *)
(* traffic                                                             *)

(* --arrival poisson:<rate> | batch:<size>:<period> | pareto:<a>:<lo>:<hi> *)
let parse_arrival_spec spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad --arrival %S (expected poisson:<rate>, batch:<size>:<period> \
          or pareto:<alpha>:<min>:<max>)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "poisson"; r ] -> (
      match float_of_string_opt r with
      | Some r -> Ok (Qnet_online.Workload.Poisson r)
      | None -> fail ())
  | [ "batch"; size; period ] -> (
      match (int_of_string_opt size, float_of_string_opt period) with
      | Some size, Some period ->
          Ok (Qnet_online.Workload.Batched { period; size })
      | _ -> fail ())
  | [ "pareto"; a; lo; hi ] -> (
      match
        (float_of_string_opt a, float_of_string_opt lo, float_of_string_opt hi)
      with
      | Some alpha, Some lo, Some hi ->
          Ok (Qnet_online.Workload.Pareto { alpha; lo; hi })
      | _ -> fail ())
  | _ -> fail ()

(* diurnal:<period>:<amplitude> | flash:<at>:<width>:<boost> — accepted
   by --arrival (over the default base process) and by --modulate
   (composed with any explicit --arrival base spec). *)
let parse_modulation_spec spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad modulation %S (expected diurnal:<period>:<amplitude> or \
          flash:<at>:<width>:<boost>)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "diurnal"; p; a ] -> (
      match (float_of_string_opt p, float_of_string_opt a) with
      | Some period, Some amplitude ->
          Ok (Qnet_online.Workload.Diurnal { period; amplitude })
      | _ -> fail ())
  | [ "flash"; at; w; b ] -> (
      match
        (float_of_string_opt at, float_of_string_opt w, float_of_string_opt b)
      with
      | Some at, Some width, Some boost ->
          Ok (Qnet_online.Workload.Flash { at; width; boost })
      | _ -> fail ())
  | _ -> fail ()

let is_modulation_spec spec =
  match String.index_opt spec ':' with
  | Some i ->
      let k = String.sub spec 0 i in
      k = "diurnal" || k = "flash"
  | None -> false

(* --group fixed:<k> | uniform:<lo>:<hi> | pareto:<a>:<lo>:<hi> *)
let parse_group_spec spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad --group %S (expected fixed:<k>, uniform:<min>:<max> or \
          pareto:<alpha>:<min>:<max>)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "fixed"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Qnet_online.Workload.Fixed k)
      | None -> fail ())
  | [ "uniform"; lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Ok (Qnet_online.Workload.Uniform (lo, hi))
      | _ -> fail ())
  | [ "pareto"; a; lo; hi ] -> (
      match
        (float_of_string_opt a, int_of_string_opt lo, int_of_string_opt hi)
      with
      | Some alpha, Some lo, Some hi ->
          Ok (Qnet_online.Workload.Pareto_group { alpha; lo; hi })
      | _ -> fail ())
  | _ -> fail ()

let traffic_run verbose seed users switches degree qubits q alpha topology
    requests arrival_rate batch_size batch_period arrival_spec modulate_spec
    group_min group_max group_spec duration_min duration_max patience_min
    patience_max policy_name cache hier regions tiers_spec queue retry_base
    retry_max max_queue max_inflight rate_limit burst budget flow_gate gap
    fail_on_sla fault_mtbf fault_mttr fault_targets fault_regional
    fault_radius recovery_name checkpoint_every checkpoint_file
    checkpoint_mode journal_file restore_file reconfig_file halt_at
    drill_every jobs slot show_outcomes metrics =
  apply_verbose verbose;
  metrics_begin metrics;
  if slot < 0. || not (Float.is_finite slot) then begin
    prerr_endline "--slot must be a finite time >= 0";
    exit 1
  end;
  if checkpoint_every < 0. || not (Float.is_finite checkpoint_every) then begin
    prerr_endline "--checkpoint-every must be a finite time >= 0";
    exit 1
  end;
  if drill_every < 0. || not (Float.is_finite drill_every) then begin
    prerr_endline "--drill must be a finite time >= 0";
    exit 1
  end;
  if halt_at >= 0. && checkpoint_every <= 0. then begin
    prerr_endline "--halt-at requires --checkpoint-every";
    exit 1
  end;
  let chain_cadence =
    (* full = every cut is a self-contained snapshot; incr:K = deltas
       against the previous cut, rebased to a full snapshot every K. *)
    let bad () =
      prerr_endline
        "--checkpoint-mode must be `full' or `incr:K' with K >= 1 deltas \
         per full-snapshot rebase";
      exit 1
    in
    match checkpoint_mode with
    | "full" -> None
    | s when String.length s > 5 && String.sub s 0 5 = "incr:" -> (
        match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some k when k >= 1 -> Some k
        | _ -> bad ())
    | _ -> bad ()
  in
  if journal_file <> None && chain_cadence = None then begin
    (* The journal extends a delta chain; a full-only cadence has no
       chain head for it to attach to. *)
    prerr_endline "--journal requires --checkpoint-mode incr:K";
    exit 1
  end;
  if
    drill_every > 0.
    && (checkpoint_every > 0. || restore_file <> None || halt_at >= 0.
       || journal_file <> None)
  then begin
    (* The drill owns the checkpoint/restore cycle itself (and the
       chain drill journals internally). *)
    prerr_endline
      "--drill cannot be combined with --checkpoint-every, --restore, \
       --halt-at or --journal";
    exit 1
  end;
  if hier && tiers_spec <> "" then begin
    (* The tier ladder degrades across flat policies; the hier policy
       is a different oracle, not a rung on that ladder. *)
    prerr_endline "--hier cannot be combined with --tiers";
    exit 1
  end;
  let regions = resolve_regions ~switches regions in
  let spec = build_spec ~users ~switches ~degree ~qubits in
  match build_network_labeled ~seed ~topology ~regions ~spec with
  | Error (`Msg m) -> prerr_endline m; exit 1
  | Ok (g, labels) ->
      let params = Params.create ~alpha ~q () in
      let base_arrivals () =
        if batch_size > 0 then
          Qnet_online.Workload.Batched
            { period = batch_period; size = batch_size }
        else Qnet_online.Workload.Poisson arrival_rate
      in
      let arrivals, arrival_mod =
        match arrival_spec with
        | Some spec when is_modulation_spec spec -> (
            (* --arrival diurnal:…/flash:… modulates the default base
               process; an explicit base goes through --modulate. *)
            match parse_modulation_spec spec with
            | Ok m -> (base_arrivals (), Some m)
            | Error msg -> prerr_endline msg; exit 1)
        | Some spec -> (
            match parse_arrival_spec spec with
            | Ok a -> (a, None)
            | Error msg -> prerr_endline msg; exit 1)
        | None -> (base_arrivals (), None)
      in
      let modulation =
        match modulate_spec with
        | None -> arrival_mod
        | Some spec -> (
            if arrival_mod <> None then begin
              prerr_endline
                "--modulate cannot be combined with a modulating --arrival \
                 spec";
              exit 1
            end;
            match parse_modulation_spec spec with
            | Ok m -> Some m
            | Error msg -> prerr_endline msg; exit 1)
      in
      let group_size =
        match group_spec with
        | Some spec -> (
            match parse_group_spec spec with
            | Ok gsp -> gsp
            | Error msg -> prerr_endline msg; exit 1)
        | None -> Qnet_online.Workload.Uniform (group_min, group_max)
      in
      let wspec =
        try
          Qnet_online.Workload.spec ~requests ~arrivals ~group_size
            ~duration:(duration_min, duration_max)
            ~patience:(patience_min, patience_max)
            ?modulation ()
        with Invalid_argument msg -> prerr_endline msg; exit 1
      in
      let named name =
        match
          Qnet_online.Policy.of_name (if cache then "cached-" ^ name else name)
        with
        | Some p -> p
        | None ->
            prerr_endline
              ("unknown policy: " ^ name
             ^ " (expected prim|alg2|alg3|eqcast|flow, optionally with \
                --cache)");
            exit 1
      in
      let hier_oracle =
        if not hier then None
        else begin
          let part = hier_partition ~seed ~regions g labels in
          Format.printf "partition: %a@." Qnet_hier.Partition.pp part;
          Some (Qnet_hier.Oracle.create g params part)
        end
      in
      let policy, tier_stats =
        match (hier_oracle, tiers_spec) with
        | Some oracle, _ ->
            let p = Qnet_hier.Serve.policy oracle in
            ((if cache then Qnet_online.Policy.cached p else p), None)
        | None, "" -> (named policy_name, None)
        | None, spec ->
            let names =
              String.split_on_char ',' spec
              |> List.map String.trim
              |> List.filter (fun n -> n <> "")
            in
            if names = [] then begin
              prerr_endline "bad --tiers: no tier names";
              exit 1
            end;
            let fuel = if budget > 0 then budget else 4096 in
            let p, stats =
              Qnet_online.Policy.tiered ~fuel (List.map named names)
            in
            (p, Some stats)
      in
      let recovery =
        match Qnet_online.Engine.recovery_of_string recovery_name with
        | Ok r -> r
        | Error msg -> prerr_endline msg; exit 1
      in
      let overload =
        try
          Qnet_overload.Admission.make
            ?max_queue:(if max_queue > 0 then Some max_queue else None)
            ?max_inflight:(if max_inflight > 0 then Some max_inflight else None)
            ?rate:(if rate_limit > 0. then Some rate_limit else None)
            ?burst:(if burst > 0. then Some burst else None)
            ?infeasible:
              (if flow_gate then Some (Qnet_flow.Gate.predicate g) else None)
            ()
        with Invalid_argument msg -> prerr_endline msg; exit 1
      in
      let config =
        try
          Qnet_online.Engine.config
            ~admission:
              (if queue > 0 then Qnet_online.Engine.Queue queue
               else Qnet_online.Engine.Reject)
            ~retry_base ~retry_max ~recovery ~overload
            ?budget:
              (if budget > 0 && tier_stats = None then Some budget else None)
            ?tier_stats policy
        with Invalid_argument msg -> prerr_endline msg; exit 1
      in
      let faults =
        if fault_mtbf > 0. || fault_regional > 0. then begin
          let targets =
            match Qnet_faults.Model.target_of_string fault_targets with
            | Ok t -> t
            | Error msg -> prerr_endline msg; exit 1
          in
          try
            Some
              (Qnet_faults.Model.make
                 ~mtbf:(if fault_mtbf > 0. then fault_mtbf else infinity)
                 ~mttr:fault_mttr ~targets ~regional_rate:fault_regional
                 ~regional_radius:fault_radius
                   (* Distinct stream from the workload's, still driven
                      by the one --seed. *)
                 ~seed:(seed + 40_961) ())
          with Invalid_argument msg -> prerr_endline msg; exit 1
        end
        else None
      in
      let rng = Qnet_util.Prng.create (seed + 8_191) in
      let reqs =
        try Qnet_online.Workload.generate rng g wspec
        with Invalid_argument msg -> prerr_endline msg; exit 1
      in
      Format.printf "%a, seed %d@." Graph.pp g seed;
      Format.printf "workload: %a@." Qnet_online.Workload.pp_spec wspec;
      Printf.printf "policy: %s, queue bound %s\n"
        policy.Qnet_online.Policy.name
        (if queue > 0 then string_of_int queue else "none (reject)");
      (match faults with
      | None -> ()
      | Some model ->
          Format.printf "%a, recovery %s@." Qnet_faults.Model.pp model
            (Qnet_online.Engine.recovery_to_string recovery));
      (* With faults in play, eagerly invalidate the hier oracle's
         region caches on every element transition instead of waiting
         for lazy revalidation to notice. *)
      let on_health =
        Option.map
          (fun oracle health -> Qnet_hier.Serve.attach_health oracle health)
          hier_oracle
      in
      let reconfig =
        match reconfig_file with
        | None -> []
        | Some path -> (
            let data =
              try
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let data = really_input_string ic n in
                close_in ic;
                data
              with Sys_error m ->
                Printf.eprintf "cannot read reconfig file: %s\n" m;
                exit 2
            in
            match Qnet_util.Sexp.of_string (String.trim data) with
            | Error m ->
                Printf.eprintf "reconfig %s: %s\n" path m;
                exit 2
            | Ok doc -> (
                match Qnet_online.Reconfig.of_sexp doc with
                | Error m ->
                    Printf.eprintf "reconfig %s: %s\n" path m;
                    exit 2
                | Ok events -> (
                    match Qnet_online.Reconfig.validate g events with
                    | Error m ->
                        Printf.eprintf "reconfig %s: %s\n" path m;
                        exit 2
                    | Ok () ->
                        Printf.printf "reconfig: %d change(s) from %s\n"
                          (List.length events) path;
                        events)))
      in
      (* Everything that shapes the deterministic run — a checkpoint
         only restores byte-identically under identical inputs.  --jobs
         and --slot are deliberately absent: results are invariant
         across them, so a checkpoint cut at one parallelism level may
         be restored at another. *)
      let fingerprint =
        Format.asprintf
          "seed=%d topology=%s users=%d switches=%d degree=%.17g qubits=%d \
           q=%.17g alpha=%.17g regions=%d workload=[%a] policy=%s%s \
           queue=%d retry=%.17g/%.17g \
           overload=%d/%d/%.17g/%.17g/%d/%b \
           faults=%.17g/%.17g/%s/%.17g/%.17g recovery=%s reconfig=%s"
          seed topology users switches degree qubits q alpha regions
          Qnet_online.Workload.pp_spec wspec
          policy.Qnet_online.Policy.name
          (if tiers_spec <> "" then " tiers=" ^ tiers_spec else "")
          queue retry_base retry_max max_queue max_inflight rate_limit
          burst budget flow_gate fault_mtbf fault_mttr fault_targets
          fault_regional fault_radius recovery_name
          (if reconfig = [] then "none"
           else
             Digest.to_hex
               (Digest.string
                  (Qnet_util.Sexp.to_string
                     (Qnet_online.Reconfig.to_sexp reconfig))))
      in
      if drill_every > 0. then begin
        match chain_cadence with
        | Some cadence ->
            (* Incremental-chain drill: cut through a real chain writer
               (base + deltas + journal on disk), crash into every
               capture, recover and verify the journal replay. *)
            let dir =
              Filename.temp_dir "muerp-drill" ""
            in
            let drill =
              try
                with_jobs jobs (fun pool ->
                    Qnet_resilience.Drill.chain_restore ~config ?faults
                      ~reconfig ?pool ~slot ~every:drill_every ~cadence ~dir g
                      params ~requests:reqs)
              with Invalid_argument msg -> prerr_endline msg; exit 1
            in
            (try Sys.rmdir dir with Sys_error _ -> ());
            Format.printf "%a@." Qnet_resilience.Drill.pp_chain drill;
            metrics_report metrics;
            exit (if Qnet_resilience.Drill.chain_passed drill then 0 else 1)
        | None ->
            (* Crash-recovery drill: checkpoint every --drill time
               units, then simulate a crash at every instant and diff
               the restored continuations against the uninterrupted
               run. *)
            let drill =
              try
                with_jobs jobs (fun pool ->
                    Qnet_resilience.Drill.crash_restore ~config ?faults
                      ~reconfig ?pool ~slot ~every:drill_every g params
                      ~requests:reqs)
              with Invalid_argument msg -> prerr_endline msg; exit 1
            in
            Format.printf "%a@." Qnet_resilience.Drill.pp drill;
            metrics_report metrics;
            exit (if Qnet_resilience.Drill.passed drill then 0 else 1)
      end;
      let restore_from, replay_verifier =
        match restore_file with
        | None -> (None, None)
        | Some path when chain_cadence <> None -> (
            (* Incremental mode: walk the chain (base -> deltas),
               tolerate a poisoned suffix, and pick up the journal tail
               for replay verification. *)
            match
              Qnet_resilience.Chain.recover ~path ~config:fingerprint
                ?journal:journal_file ()
            with
            | Ok r ->
                List.iter
                  (fun w -> Printf.eprintf "warning: %s\n" w)
                  r.Qnet_resilience.Chain.r_warnings;
                Printf.printf
                  "restored from %s (checkpoint at t=%g, %d delta(s) \
                   applied, %d journal record(s) to verify)\n"
                  path
                  (Qnet_online.Engine.snapshot_at
                     r.Qnet_resilience.Chain.r_snapshot)
                  r.Qnet_resilience.Chain.r_deltas_applied
                  (List.length r.Qnet_resilience.Chain.r_journal);
                ( Some r.Qnet_resilience.Chain.r_snapshot,
                  if journal_file <> None then
                    Some
                      (Qnet_resilience.Journal.verifier
                         r.Qnet_resilience.Chain.r_journal)
                  else None )
            | Error msg -> prerr_endline msg; exit 2)
        | Some path -> (
            match
              Qnet_resilience.Checkpoint.load ~path ~config:fingerprint
            with
            | Ok snap ->
                Printf.printf "restored from %s (checkpoint at t=%g)\n" path
                  (Qnet_online.Engine.snapshot_at snap);
                (Some snap, None)
            | Error msg -> prerr_endline msg; exit 2)
      in
      let chain_writer =
        match chain_cadence with
        | Some k when checkpoint_every > 0. ->
            Some
              (Qnet_resilience.Chain.create ~path:checkpoint_file
                 ~config:fingerprint ~every:k ?journal:journal_file ())
        | _ -> None
      in
      let checkpoint =
        if checkpoint_every <= 0. then None
        else
          Some
            ( checkpoint_every,
              fun at snap ->
                (match chain_writer with
                | Some w -> (
                    match Qnet_resilience.Chain.cut w snap with
                    | Ok _ -> ()
                    | Error msg -> prerr_endline msg; exit 2)
                | None -> (
                    match
                      Qnet_resilience.Checkpoint.save ~path:checkpoint_file
                        ~config:fingerprint snap
                    with
                    | Ok _ -> ()
                    | Error msg -> prerr_endline msg; exit 2));
                if halt_at >= 0. && at >= halt_at then begin
                  (* Flush the journal before the simulated crash: its
                     records attest the transitions past this cut. *)
                  Option.iter Qnet_resilience.Chain.close chain_writer;
                  Printf.printf
                    "halted at checkpoint t=%g (state saved to %s; resume \
                     with --restore %s)\n"
                    at checkpoint_file checkpoint_file;
                  exit 0
                end )
      in
      let on_transition =
        match (chain_writer, replay_verifier) with
        | None, None -> None
        | w, v ->
            Some
              (fun tr ->
                (match v with
                | Some v -> Qnet_resilience.Journal.observe v tr
                | None -> ());
                match w with
                | Some w -> Qnet_resilience.Chain.on_transition w tr
                | None -> ())
      in
      let report, outcomes =
        try
          with_jobs jobs (fun pool ->
              Qnet_online.Engine.run ~config ?faults ?pool ?on_health ~slot
                ?on_transition ?checkpoint ~reconfig ?restore_from g params
                ~requests:reqs)
        with Invalid_argument msg ->
          prerr_endline msg;
          (* A restore the engine refuses means the file lied about
             matching this run — a file problem, not a flag problem. *)
          exit (if restore_from <> None then 2 else 1)
      in
      Option.iter Qnet_resilience.Chain.close chain_writer;
      (match replay_verifier with
      | None -> ()
      | Some v -> (
          match Qnet_resilience.Journal.finish v with
          | Ok 0 -> ()
          | Ok n ->
              Printf.printf
                "journal verified: %d committed transition(s) re-emitted \
                 identically\n"
                n
          | Error msg ->
              Printf.eprintf "journal verification failed: %s\n" msg;
              exit 2));
      print_endline
        (Qnet_util.Table.to_string (Qnet_online.Engine.report_table report));
      if gap then begin
        (* How much headroom the network itself leaves: each one-shot
           method on the *full-capacity* instance against the flow LP
           ceiling.  A static companion to the dynamic SLA report above
           — it answers "was the policy the bottleneck, or the
           network?". *)
        let inst = Muerp.instance ~params g in
        let rows =
          List.map
            (fun alg ->
              let o =
                Muerp.solve ~rng:(Qnet_util.Prng.create seed) alg inst
              in
              ( Muerp.algorithm_name alg,
                o.Muerp.neg_log_rate,
                Muerp.outcome_capacity_ok inst o ))
            Muerp.all_heuristics
          @ [
              ( "e-q-cast",
                (match Qnet_baselines.Eqcast.solve g params with
                | Some t -> Ent_tree.rate_neg_log t
                | None -> infinity),
                true );
            ]
        in
        print_endline "optimality gap vs LP bound (full-capacity instance):";
        print_endline (Qnet_util.Table.to_string (gap_table g params rows))
      end;
      if show_outcomes then
        List.iter
          (fun (o : Qnet_online.Engine.outcome) ->
            let r = o.Qnet_online.Engine.request in
            let users =
              String.concat ","
                (List.map string_of_int r.Qnet_online.Workload.users)
            in
            match o.Qnet_online.Engine.resolution with
            | Qnet_online.Engine.Served { start; rate; attempts; tier; _ } ->
                Printf.printf
                  "  #%-3d t=%-7.2f {%s}  SERVED @%.2f  rate %.4g  \
                   attempts %d%s\n"
                  r.Qnet_online.Workload.id r.Qnet_online.Workload.arrival
                  users start rate attempts
                  (if tier > 0 then Printf.sprintf "  tier %d" tier else "")
            | Qnet_online.Engine.Rejected { at; queue_full } ->
                Printf.printf "  #%-3d t=%-7.2f {%s}  REJECTED @%.2f%s\n"
                  r.Qnet_online.Workload.id r.Qnet_online.Workload.arrival
                  users at
                  (if queue_full then " (queue full)" else "")
            | Qnet_online.Engine.Shed { at; reason } ->
                Printf.printf "  #%-3d t=%-7.2f {%s}  SHED @%.2f (%s)\n"
                  r.Qnet_online.Workload.id r.Qnet_online.Workload.arrival
                  users at
                  (match reason with
                  | Qnet_online.Engine.Rate_limit -> "rate limit"
                  | Qnet_online.Engine.Queue_pressure -> "queue pressure")
            | Qnet_online.Engine.Expired { at; attempts } ->
                Printf.printf
                  "  #%-3d t=%-7.2f {%s}  EXPIRED @%.2f  attempts %d\n"
                  r.Qnet_online.Workload.id r.Qnet_online.Workload.arrival
                  users at attempts
            | Qnet_online.Engine.Interrupted { start; at; recoveries; _ } ->
                Printf.printf
                  "  #%-3d t=%-7.2f {%s}  INTERRUPTED @%.2f (served from \
                   %.2f, %d recoveries)\n"
                  r.Qnet_online.Workload.id r.Qnet_online.Workload.arrival
                  users at start recoveries)
          outcomes;
      metrics_report metrics;
      if
        fail_on_sla >= 0.
        && report.Qnet_online.Engine.acceptance_ratio *. 100. < fail_on_sla
      then begin
        Printf.eprintf "SLA gate failed: acceptance %.2f%% < %.2f%%\n"
          (report.Qnet_online.Engine.acceptance_ratio *. 100.)
          fail_on_sla;
        exit 1
      end

let traffic_cmd =
  let requests_t =
    let doc = "Number of requests in the workload." in
    Arg.(value & opt int 100 & info [ "requests"; "n" ] ~docv:"N" ~doc)
  in
  let arrival_rate_t =
    let doc = "Poisson arrival rate (requests per time unit)." in
    Arg.(value & opt float 0.5 & info [ "arrival-rate" ] ~docv:"RATE" ~doc)
  in
  let batch_size_t =
    let doc =
      "Arrive in synchronised batches of $(docv) requests instead of a \
       Poisson process (0 disables batching)."
    in
    Arg.(value & opt int 0 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let batch_period_t =
    let doc = "Time between batches (with --batch)." in
    Arg.(value & opt float 5. & info [ "batch-period" ] ~docv:"T" ~doc)
  in
  let group_min_t =
    let doc = "Smallest user-group size." in
    Arg.(value & opt int 2 & info [ "group-min" ] ~docv:"N" ~doc)
  in
  let group_max_t =
    let doc = "Largest user-group size." in
    Arg.(value & opt int 4 & info [ "group-max" ] ~docv:"N" ~doc)
  in
  let duration_min_t =
    let doc = "Shortest lease duration." in
    Arg.(value & opt float 3. & info [ "duration-min" ] ~docv:"T" ~doc)
  in
  let duration_max_t =
    let doc = "Longest lease duration." in
    Arg.(value & opt float 8. & info [ "duration-max" ] ~docv:"T" ~doc)
  in
  let patience_min_t =
    let doc = "Shortest deadline slack before a request abandons." in
    Arg.(value & opt float 0. & info [ "patience-min" ] ~docv:"T" ~doc)
  in
  let patience_max_t =
    let doc = "Longest deadline slack before a request abandons." in
    Arg.(value & opt float 10. & info [ "patience-max" ] ~docv:"T" ~doc)
  in
  let policy_t =
    let doc =
      "Serving policy: prim, alg2, alg3, eqcast or flow (the LP \
       relaxation + randomized rounding optimizer, falling back to prim \
       when rounding fails)."
    in
    Arg.(value & opt string "prim" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let cache_t =
    let doc = "Memoise trees per user group (cached-* policy variant)." in
    Arg.(value & flag & info [ "cache" ] ~doc)
  in
  let queue_t =
    let doc = "Waiting-queue bound (0 = reject unroutable arrivals)." in
    Arg.(value & opt int 32 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let retry_base_t =
    let doc = "Initial retry backoff after a failed routing attempt." in
    Arg.(value & opt float 0.5 & info [ "retry-base" ] ~docv:"T" ~doc)
  in
  let retry_max_t =
    let doc = "Retry backoff cap (doubling saturates here)." in
    Arg.(value & opt float 8. & info [ "retry-max" ] ~docv:"T" ~doc)
  in
  let fault_mtbf_t =
    let doc =
      "Mean time between failures per infrastructure element (0 disables \
       the independent failure process)."
    in
    Arg.(value & opt float 0. & info [ "fault-mtbf" ] ~docv:"T" ~doc)
  in
  let fault_mttr_t =
    let doc = "Mean time to repair a failed element." in
    Arg.(value & opt float 10. & info [ "fault-mttr" ] ~docv:"T" ~doc)
  in
  let fault_targets_t =
    let doc =
      "Element class the failure process hits: $(b,links), $(b,switches) \
       or $(b,both)."
    in
    Arg.(value & opt string "both" & info [ "fault-targets" ] ~docv:"KIND" ~doc)
  in
  let fault_regional_t =
    let doc =
      "Correlated regional-outage rate (outages per time unit; 0 \
       disables)."
    in
    Arg.(value & opt float 0. & info [ "fault-regional" ] ~docv:"RATE" ~doc)
  in
  let fault_radius_t =
    let doc = "Radius of a regional outage (km, in layout units)." in
    Arg.(value & opt float 100. & info [ "fault-radius" ] ~docv:"R" ~doc)
  in
  let recovery_t =
    let doc =
      "Mid-lease fault response: $(b,abort), $(b,repair) (replace dead \
       channels) or $(b,reroute) (route the group afresh)."
    in
    Arg.(value & opt string "repair" & info [ "recovery" ] ~docv:"MODE" ~doc)
  in
  let outcomes_t =
    let doc = "Also print one line per request outcome." in
    Arg.(value & flag & info [ "outcomes" ] ~doc)
  in
  let arrival_spec_t =
    let doc =
      "Arrival process spec: $(b,poisson:<rate>), \
       $(b,batch:<size>:<period>) or $(b,pareto:<alpha>:<min>:<max>) \
       (bounded-Pareto inter-arrival gaps).  Overrides --arrival-rate \
       and --batch.  Also accepts $(b,diurnal:<period>:<amplitude>) and \
       $(b,flash:<at>:<width>:<boost>), which modulate the default base \
       process (see --modulate to compose with an explicit base)."
    in
    Arg.(
      value & opt (some string) None & info [ "arrival" ] ~docv:"SPEC" ~doc)
  in
  let group_spec_t =
    let doc =
      "Group-size spec: $(b,fixed:<k>), $(b,uniform:<min>:<max>) or \
       $(b,pareto:<alpha>:<min>:<max>).  Overrides --group-min/--group-max."
    in
    Arg.(value & opt (some string) None & info [ "group" ] ~docv:"SPEC" ~doc)
  in
  let tiers_t =
    let doc =
      "Graceful-degradation tiers: comma-separated policy names tried in \
       order under per-tier fuel budgets and circuit breakers (e.g. \
       $(b,alg3,alg2,prim)).  Replaces --policy."
    in
    Arg.(value & opt string "" & info [ "tiers" ] ~docv:"NAMES" ~doc)
  in
  let max_queue_t =
    let doc =
      "Admission control: shed cheapest-to-refuse requests once the \
       waiting queue holds $(docv) entries (0 = unlimited)."
    in
    Arg.(value & opt int 0 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let max_inflight_t =
    let doc =
      "Admission control: defer new serves while $(docv) leases are \
       active (0 = unlimited)."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let rate_t =
    let doc =
      "Token-bucket admission rate (requests per time unit; 0 = \
       unlimited)."
    in
    Arg.(value & opt float 0. & info [ "rate" ] ~docv:"RATE" ~doc)
  in
  let burst_t =
    let doc = "Token-bucket burst size (defaults to max 1 --rate)." in
    Arg.(value & opt float 0. & info [ "burst" ] ~docv:"N" ~doc)
  in
  let budget_t =
    let doc =
      "Solver fuel budget in Dijkstra node expansions per routing \
       attempt (0 = unmetered).  With --tiers this is the per-tier fuel."
    in
    Arg.(value & opt int 0 & info [ "budget" ] ~docv:"FUEL" ~doc)
  in
  let flow_gate_t =
    let doc =
      "Admission control: reject provably-unservable groups (users not \
       connected over relay-capable switches) before any solver search, \
       via the flow subsystem's feasibility oracle.  Sound — it never \
       rejects a group any policy could serve."
    in
    Arg.(value & flag & info [ "flow-gate" ] ~doc)
  in
  let gap_t =
    let doc =
      "After the SLA report, print each one-shot method's optimality \
       gap against the flow LP bound on the full-capacity instance."
    in
    Arg.(value & flag & info [ "gap" ] ~doc)
  in
  let slot_t =
    let doc =
      "Batched serving window: with --jobs > 1, drain all events within \
       $(docv) time units of the earliest pending event and solve their \
       routing concurrently against capacity snapshots before the \
       deterministic commit (0 batches same-timestamp events only).  \
       Results are byte-identical at every --jobs level and every \
       window — batching is purely a throughput knob."
    in
    Arg.(value & opt float 0. & info [ "slot" ] ~docv:"DT" ~doc)
  in
  let fail_on_sla_t =
    let doc =
      "Exit nonzero when the acceptance ratio falls below $(docv) \
       percent (negative disables the gate)."
    in
    Arg.(value & opt float (-1.) & info [ "fail-on-sla" ] ~docv:"PCT" ~doc)
  in
  let modulate_t =
    let doc =
      "Long-horizon arrival-rate modulation composed with the base \
       arrival process: $(b,diurnal:<period>:<amplitude>) (sinusoidal \
       day/night curve) or $(b,flash:<at>:<width>:<boost>) (flash \
       crowd).  The same grammar is accepted directly by --arrival."
    in
    Arg.(
      value & opt (some string) None & info [ "modulate" ] ~docv:"SPEC" ~doc)
  in
  let checkpoint_every_t =
    let doc =
      "Cut a durable engine checkpoint every $(docv) time units (0 \
       disables).  Each checkpoint atomically overwrites --checkpoint."
    in
    Arg.(value & opt float 0. & info [ "checkpoint-every" ] ~docv:"DT" ~doc)
  in
  let checkpoint_file_t =
    let doc = "Checkpoint file path (with --checkpoint-every)." in
    Arg.(
      value
      & opt string "muerp.ckpt"
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_mode_t =
    let doc =
      "Checkpoint strategy: $(b,full) rewrites a self-contained \
       snapshot at every cut; $(b,incr:K) writes compact delta files \
       chained to the last full snapshot, rebasing to a fresh full \
       snapshot every $(i,K) deltas.  With --restore, $(b,incr:K) \
       recovers by walking the chain, skipping any corrupt suffix."
    in
    Arg.(
      value & opt string "full" & info [ "checkpoint-mode" ] ~docv:"MODE" ~doc)
  in
  let journal_t =
    let doc =
      "Write-ahead event journal path (requires --checkpoint-mode \
       incr:K).  Every committed engine transition since the last cut \
       is appended (fsync-batched); on --restore the recovered run is \
       verified to re-emit the journal exactly."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let restore_t =
    let doc =
      "Resume an interrupted run from a checkpoint file written under \
       the same flags.  The continuation reproduces the uninterrupted \
       run's report byte-for-byte."
    in
    Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"FILE" ~doc)
  in
  let reconfig_file_t =
    let doc =
      "Apply live topology reconfiguration events from a \
       muerp-reconfig/1 s-expression file: switch join/leave, link \
       add/remove, and qubit re-provisioning, mid-run and without \
       draining traffic."
    in
    Arg.(
      value & opt (some string) None & info [ "reconfig" ] ~docv:"FILE" ~doc)
  in
  let halt_at_t =
    let doc =
      "Crash-recovery drills: exit 0 after writing the first checkpoint \
       at or past time $(docv), simulating an interrupted run (negative \
       disables; requires --checkpoint-every)."
    in
    Arg.(value & opt float (-1.) & info [ "halt-at" ] ~docv:"T" ~doc)
  in
  let drill_t =
    let doc =
      "Run an in-process crash-recovery drill instead of a plain run: \
       checkpoint every $(docv) time units, simulate a crash at every \
       checkpoint instant, and diff each restored continuation against \
       the uninterrupted run (0 disables; exits nonzero on any \
       divergence).  With --checkpoint-mode incr:K the drill exercises \
       the full incremental stack instead: real chain files on disk, \
       recovery walks, and write-ahead journal replay at every crash \
       point."
    in
    Arg.(value & opt float 0. & info [ "drill" ] ~docv:"DT" ~doc)
  in
  let info =
    Cmd.info "traffic"
      ~doc:
        "Serve a dynamic multi-user request workload with the online \
         traffic engine."
  in
  Cmd.v info
    Term.(
      const traffic_run $ verbose_t $ seed_t $ users_t $ switches_t
      $ degree_t $ qubits_t $ q_t $ alpha_t $ topology_t $ requests_t
      $ arrival_rate_t $ batch_size_t $ batch_period_t $ arrival_spec_t
      $ modulate_t
      $ group_min_t $ group_max_t $ group_spec_t $ duration_min_t
      $ duration_max_t $ patience_min_t $ patience_max_t $ policy_t
      $ cache_t $ hier_t $ regions_t $ tiers_t $ queue_t $ retry_base_t
      $ retry_max_t
      $ max_queue_t $ max_inflight_t $ rate_t $ burst_t $ budget_t
      $ flow_gate_t $ gap_t
      $ fail_on_sla_t $ fault_mtbf_t $ fault_mttr_t $ fault_targets_t
      $ fault_regional_t $ fault_radius_t $ recovery_t
      $ checkpoint_every_t $ checkpoint_file_t $ checkpoint_mode_t
      $ journal_t $ restore_t
      $ reconfig_file_t $ halt_at_t $ drill_t $ jobs_t $ slot_t
      $ outcomes_t $ metrics_t)

(* ------------------------------------------------------------------ *)

let main =
  let info =
    Cmd.info "muerp" ~version:"1.0.0"
      ~doc:"Multi-user entanglement routing over quantum Internets."
  in
  Cmd.group info
    [
      solve_cmd; topology_cmd; experiment_cmd; simulate_cmd; sweep_cmd;
      dot_cmd; svg_cmd; fidelity_cmd; groups_cmd; reference_cmd; schedule_cmd;
      traffic_cmd;
    ]

let () =
  (* Dune's selective linking drops module initialisers that nothing
     references, so the flow policy registers itself here, explicitly,
     before any Policy.of_name lookup can run. *)
  Qnet_flow.Serve.register ();
  exit (Cmd.eval main)
