(* Benchmark harness: reproduces every figure of the paper's evaluation
   (§V) and micro-benchmarks the routing algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig5       # one experiment
     dune exec bench/main.exe headline   # §V-B improvement ratios
     dune exec bench/main.exe micro      # Bechamel timings only

   MUERP_REPLICATIONS=<n> overrides the 20-network averaging for quick
   runs. *)

module Figures = Qnet_experiments.Figures
module Report = Qnet_experiments.Report
module Config = Qnet_experiments.Config

let replications =
  match Sys.getenv_opt "MUERP_REPLICATIONS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> 20)
  | None -> 20

let cfg = Config.create ~replications ()

let print_series s =
  print_endline (Report.series_to_string s);
  print_newline ()

let run_figure id =
  let s =
    match id with
    | "fig5" -> Figures.fig5 ~cfg ()
    | "fig6a" -> Figures.fig6a ~cfg ()
    | "fig6b" -> Figures.fig6b ~cfg ()
    | "fig7a" -> Figures.fig7a ~cfg ()
    | "fig7b" -> Figures.fig7b ~cfg ()
    | "fig8a" -> Figures.fig8a ~cfg ()
    | "fig8b" -> Figures.fig8b ~cfg ()
    | _ -> failwith ("unknown figure: " ^ id)
  in
  print_series s;
  s

let all_figure_ids =
  [ "fig5"; "fig6a"; "fig6b"; "fig7a"; "fig7b"; "fig8a"; "fig8b" ]

let run_headline series =
  let series =
    if series = [] then List.map run_figure all_figure_ids else series
  in
  print_endline
    "Headline improvements (cf. paper §V-B: up to 5347%/3180%/3155% vs \
     N-FUSION, 5068%/3014%/2990% vs E-Q-CAST):";
  print_endline
    (Qnet_util.Table.to_string
       (Report.headlines_table (Figures.headlines series)));
  print_newline ()

(* Extension experiment beyond the paper: all five methods on the two
   reference WAN topologies, averaged over random user placements. *)
let run_reference_nets () =
  let module R = Qnet_experiments.Runner in
  let params = Qnet_core.Params.default in
  let t =
    Qnet_util.Table.create
      ("network"
      :: List.map (fun m -> R.method_name m) R.all_methods)
  in
  let t =
    List.fold_left
      (fun t (name, net) ->
        let rates_for m =
          let samples =
            List.init replications (fun i ->
                let seed = 1 + i in
                let rng = Qnet_util.Prng.create seed in
                let g =
                  Qnet_topology.Reference_nets.build rng net ~n_users:5
                    ~qubits_per_switch:4 ~user_qubits:1_000_000
                in
                let rng_alg = Qnet_util.Prng.create (seed * 7919) in
                R.run_method g params ~rng:rng_alg ~alg2_boost:true m)
          in
          Qnet_util.Stats.mean (Array.of_list samples)
        in
        Qnet_util.Table.add_float_row t name
          (List.map rates_for R.all_methods))
      t Qnet_topology.Reference_nets.all
  in
  print_endline
    "Reference WAN topologies (extension; 5 users placed at random):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

let run_ablations () =
  print_endline "Ablation studies (design-choice sensitivity):";
  print_newline ();
  List.iter
    (fun (title, table) ->
      Printf.printf "%s\n%s\n\n" title (Qnet_util.Table.to_string table))
    (Qnet_experiments.Ablation.all ~cfg ())

(* Bechamel micro-benchmarks: per-algorithm wall-clock on the default
   network. *)
let micro () =
  let open Bechamel in
  let rng = Qnet_util.Prng.create 42 in
  let spec = Qnet_topology.Spec.default in
  let g = Qnet_topology.Waxman.generate rng spec in
  let params = Qnet_core.Params.default in
  let inst = Qnet_core.Muerp.instance ~params g in
  let solve_test name algorithm =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Qnet_core.Muerp.solve algorithm inst)))
  in
  let tests =
    [
      solve_test "alg2-optimal" Qnet_core.Muerp.Optimal;
      solve_test "alg3-conflict-free" Qnet_core.Muerp.Conflict_free;
      solve_test "alg4-prim" Qnet_core.Muerp.Prim_based;
      Test.make ~name:"e-q-cast"
        (Staged.stage (fun () -> ignore (Qnet_baselines.Eqcast.solve g params)));
      Test.make ~name:"n-fusion"
        (Staged.stage (fun () ->
             ignore (Qnet_baselines.Nfusion.solve g params)));
      Test.make ~name:"alg1-single-channel"
        (Staged.stage (fun () ->
             let capacity = Qnet_core.Capacity.of_graph g in
             match Qnet_graph.Graph.users g with
             | src :: dst :: _ ->
                 ignore
                   (Qnet_core.Routing.best_channel g params ~capacity ~src
                      ~dst)
             | _ -> ()));
    ]
  in
  print_endline "Micro-benchmarks (monotonic clock):";
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~quota:(Time.second 0.5) ())
          [ Toolkit.Instance.monotonic_clock ]
          test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        ols)
    tests;
  print_newline ()

(* Empirical runtime scaling vs network size: a sanity check of the
   paper's O(|U|²(|E| + |V| log |V|)) complexity analysis. *)
let scaling () =
  let t =
    Qnet_util.Table.create
      [ "switches"; "alg2 (ms)"; "alg3 (ms)"; "alg4 (ms)" ]
  in
  let t =
    List.fold_left
      (fun t n_switches ->
        let spec = Qnet_topology.Spec.create ~n_switches () in
        let g = Qnet_topology.Waxman.generate (Qnet_util.Prng.create 1) spec in
        let inst = Qnet_core.Muerp.instance g in
        let time alg =
          let reps = 5 in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            ignore (Qnet_core.Muerp.solve alg inst)
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1000.
        in
        Qnet_util.Table.add_row t
          [
            string_of_int n_switches;
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Optimal);
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Conflict_free);
            Printf.sprintf "%.2f" (time Qnet_core.Muerp.Prim_based);
          ])
      t
      [ 25; 50; 100; 200; 400 ]
  in
  print_endline "Runtime scaling with network size (10 users, degree 6):";
  print_endline (Qnet_util.Table.to_string t);
  print_newline ()

let write_csvs dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun id ->
      let s =
        match id with
        | "fig5" -> Figures.fig5 ~cfg ()
        | "fig6a" -> Figures.fig6a ~cfg ()
        | "fig6b" -> Figures.fig6b ~cfg ()
        | "fig7a" -> Figures.fig7a ~cfg ()
        | "fig7b" -> Figures.fig7b ~cfg ()
        | "fig8a" -> Figures.fig8a ~cfg ()
        | _ -> Figures.fig8b ~cfg ()
      in
      let path = Filename.concat dir (id ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Report.series_to_csv s);
          output_char oc '\n');
      Printf.printf "wrote %s\n%!" path)
    all_figure_ids

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "csv"; dir ] -> write_csvs dir
  | [] ->
      Printf.printf
        "MUERP benchmark suite — %d replications per point (set \
         MUERP_REPLICATIONS to override)\n\n%!"
        replications;
      let series = List.map run_figure all_figure_ids in
      run_headline series;
      run_reference_nets ();
      run_ablations ();
      scaling ();
      micro ()
  | [ "headline" ] -> run_headline []
  | [ "reference" ] -> run_reference_nets ()
  | [ "ablation" ] -> run_ablations ()
  | [ "scaling" ] -> scaling ()
  | [ "micro" ] -> micro ()
  | ids -> List.iter (fun id -> ignore (run_figure id)) ids
