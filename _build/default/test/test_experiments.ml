(* Unit tests for the qnet_experiments library: Config, Runner, Figures,
   Report.  Experiments here run with few replications to stay fast;
   the full 20-replication runs live in bench/main.exe. *)

module Spec = Qnet_topology.Spec
module Config = Qnet_experiments.Config
module Runner = Qnet_experiments.Runner
module Figures = Qnet_experiments.Figures
module Report = Qnet_experiments.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_cfg =
  Config.create
    ~spec:(Spec.create ~n_users:5 ~n_switches:15 ())
    ~replications:3 ()

let test_config_defaults () =
  let c = Config.default in
  check_int "20 replications" 20 c.Config.replications;
  check_bool "alg2 boost on" true c.Config.alg2_boost;
  Alcotest.check_raises "replications > 0"
    (Invalid_argument "Config.create: replications <= 0") (fun () ->
      ignore (Config.create ~replications:0 ()))

let test_method_names () =
  Alcotest.(check (list string))
    "paper legend order"
    [ "Alg-2"; "Alg-3"; "Alg-4"; "N-Fusion"; "E-Q-CAST" ]
    (List.map Runner.method_name Runner.all_methods)

let test_run_config_shape () =
  let aggregates = Runner.run_config tiny_cfg in
  check_int "one aggregate per method" 5 (List.length aggregates);
  List.iter
    (fun (a : Runner.aggregate) ->
      check_int "replication count" 3 a.Runner.replications;
      check_bool "mean rate in [0,1]" true
        (a.Runner.mean_rate >= 0. && a.Runner.mean_rate <= 1.);
      check_bool "feasible within bounds" true
        (a.Runner.feasible >= 0 && a.Runner.feasible <= 3);
      check_bool "times non-negative" true (a.Runner.mean_elapsed_s >= 0.))
    aggregates

let test_run_config_deterministic () =
  let r1 = Runner.mean_rates (Runner.run_config tiny_cfg) in
  let r2 = Runner.mean_rates (Runner.run_config tiny_cfg) in
  List.iter2
    (fun (m1, x1) (m2, x2) ->
      check_bool "same method" true (m1 = m2);
      Alcotest.(check (float 0.)) "same mean" x1 x2)
    r1 r2

let test_proposed_beat_baselines_on_average () =
  let rates = Runner.mean_rates (Runner.run_config tiny_cfg) in
  let get m = List.assoc m rates in
  check_bool "alg2 >= n-fusion" true (get Runner.Alg2 >= get Runner.N_fusion);
  check_bool "alg3 >= n-fusion" true (get Runner.Alg3 >= get Runner.N_fusion);
  check_bool "alg2 >= alg3" true (get Runner.Alg2 >= get Runner.Alg3 -. 1e-12)

let test_alg2_boost_effect () =
  (* With 2-qubit switches, boost lets Alg-2 route where it otherwise
     could not even pass the static >= 2 filter... 2 >= 2 holds, so use
     1-qubit switches to force the difference. *)
  let cfg =
    Config.create
      ~spec:(Spec.create ~n_users:4 ~n_switches:12 ~qubits_per_switch:1 ())
      ~replications:3 ()
  in
  let boosted = List.assoc Runner.Alg2 (Runner.mean_rates (Runner.run_config cfg)) in
  let plain =
    List.assoc Runner.Alg2
      (Runner.mean_rates (Runner.run_config { cfg with Config.alg2_boost = false }))
  in
  check_bool "boost never hurts" true (boosted >= plain)

let test_figures_shapes () =
  let checks =
    [
      ("fig5", Figures.fig5 ~cfg:tiny_cfg (), 3);
      ("fig6a", Figures.fig6a ~cfg:tiny_cfg ~user_counts:[ 3; 4 ] (), 2);
      ("fig6b", Figures.fig6b ~cfg:tiny_cfg ~switch_counts:[ 10; 15 ] (), 2);
      ("fig7a", Figures.fig7a ~cfg:tiny_cfg ~degrees:[ 4.; 6. ] (), 2);
      ("fig8a", Figures.fig8a ~cfg:tiny_cfg ~qubit_counts:[ 2; 4 ] (), 2);
      ("fig8b", Figures.fig8b ~cfg:tiny_cfg ~swap_rates:[ 0.8; 1.0 ] (), 2);
    ]
  in
  List.iter
    (fun (id, (s : Figures.series), n_x) ->
      Alcotest.(check string) "id" id s.Figures.id;
      check_int (id ^ " x count") n_x (List.length s.Figures.x_values);
      check_int (id ^ " methods") 5 (List.length s.Figures.rows);
      List.iter
        (fun (_, rates) ->
          check_int (id ^ " rates per row") n_x (List.length rates);
          List.iter
            (fun r -> check_bool "rate in [0,1]" true (r >= 0. && r <= 1.))
            rates)
        s.Figures.rows)
    checks

let test_fig7b_shape () =
  let s = Figures.fig7b ~cfg:tiny_cfg ~edges_per_step:10 ~steps:5 () in
  check_int "five steps" 5 (List.length s.Figures.x_values);
  Alcotest.(check string) "starts at ratio 0" "0.00" (List.hd s.Figures.x_values);
  List.iter
    (fun (_, rates) -> check_int "rates per method" 5 (List.length rates))
    s.Figures.rows

let test_fig8b_q1_beats_q_low () =
  (* Higher swap success rate must not lower any algorithm's mean. *)
  let s = Figures.fig8b ~cfg:tiny_cfg ~swap_rates:[ 0.7; 1.0 ] () in
  List.iter
    (fun (m, rates) ->
      match rates with
      | [ low; high ] ->
          check_bool
            (Runner.method_name m ^ " monotone in q")
            true (high >= low -. 1e-12)
      | _ -> Alcotest.fail "two points expected")
    s.Figures.rows

let test_headlines () =
  let s = Figures.fig5 ~cfg:tiny_cfg () in
  let hs = Figures.headlines [ s ] in
  check_int "3 algs x 2 baselines" 6 (List.length hs);
  List.iter
    (fun (h : Figures.headline) ->
      check_bool "improvement is a number or n/a" true
        (h.Figures.best_improvement_pct = neg_infinity
        || Float.is_finite h.Figures.best_improvement_pct))
    hs

let test_report_rendering () =
  let s = Figures.fig5 ~cfg:tiny_cfg () in
  let str = Report.series_to_string s in
  check_bool "mentions the id" true
    (String.length str > 0
    &&
    let rec find i =
      i + 4 <= String.length str && (String.sub str i 4 = "fig5" || find (i + 1))
    in
    find 0);
  let csv = Report.series_to_csv s in
  check_int "csv line per method + header" 6
    (List.length (String.split_on_char '\n' csv));
  let agg = Runner.run_config tiny_cfg in
  let t = Report.aggregate_table agg in
  check_bool "aggregate table renders" true
    (String.length (Qnet_util.Table.to_string t) > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "method names" `Quick test_method_names;
        ] );
      ( "runner",
        [
          Alcotest.test_case "shape" `Quick test_run_config_shape;
          Alcotest.test_case "deterministic" `Quick test_run_config_deterministic;
          Alcotest.test_case "proposed beat baselines" `Quick
            test_proposed_beat_baselines_on_average;
          Alcotest.test_case "alg2 boost" `Quick test_alg2_boost_effect;
        ] );
      ( "figures",
        [
          Alcotest.test_case "shapes" `Slow test_figures_shapes;
          Alcotest.test_case "fig7b" `Quick test_fig7b_shape;
          Alcotest.test_case "monotone in q" `Quick test_fig8b_q1_beats_q_low;
          Alcotest.test_case "headlines" `Quick test_headlines;
        ] );
      ( "report",
        [ Alcotest.test_case "rendering" `Quick test_report_rendering ] );
    ]
