(* Unit tests for Qnet_core.Ent_tree — Definition 1 and Eq. (2). *)

module Graph = Qnet_graph.Graph
module Params = Qnet_core.Params
module Channel = Qnet_core.Channel
module Ent_tree = Qnet_core.Ent_tree

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let params = Params.create ~alpha:1e-4 ~q:0.9 ()

(* Three users in a line through two switches:
   u0 - s3 - u1 - ... - u2 via s4; plus a redundant channel u0-u2. *)
let fixture () =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0.
  in
  let u0 = user 0. in
  let u1 = user 2000. in
  let u2 = user 4000. in
  let s3 = switch 1000. in
  let s4 = switch 3000. in
  ignore (Graph.Builder.add_edge b u0 s3 1000.);
  ignore (Graph.Builder.add_edge b s3 u1 1000.);
  ignore (Graph.Builder.add_edge b u1 s4 1000.);
  ignore (Graph.Builder.add_edge b s4 u2 1000.);
  ignore (Graph.Builder.add_edge b u0 u2 5000.);
  (Graph.Builder.freeze b, u0, u1, u2, s3, s4)

let channels g paths = List.map (Channel.make_exn g params) paths

let test_eq2_product () =
  let g, u0, u1, u2, s3, s4 = fixture () in
  let cs = channels g [ [ u0; s3; u1 ]; [ u1; s4; u2 ] ] in
  let tree = Ent_tree.of_channels cs in
  let expected = 0.9 *. exp (-0.2) *. (0.9 *. exp (-0.2)) in
  feq "product of Eq.1 rates" expected (Ent_tree.rate_prob tree);
  feq "neg log agrees" (-.log expected) (Ent_tree.rate_neg_log tree);
  Alcotest.(check int) "channel count" 2 (Ent_tree.channel_count tree)

let test_empty_tree () =
  let tree = Ent_tree.of_channels [] in
  feq "empty product is 1" 1. (Ent_tree.rate_prob tree);
  check_bool "spans singleton" true (Ent_tree.spans_users tree [ 42 ]);
  check_bool "spans empty" true (Ent_tree.spans_users tree []);
  check_bool "does not span a pair" false (Ent_tree.spans_users tree [ 1; 2 ])

let test_spans_users () =
  let g, u0, u1, u2, s3, s4 = fixture () in
  let tree =
    Ent_tree.of_channels (channels g [ [ u0; s3; u1 ]; [ u1; s4; u2 ] ])
  in
  check_bool "spans the three users" true
    (Ent_tree.spans_users tree [ u0; u1; u2 ]);
  check_bool "missing user" false
    (Ent_tree.spans_users tree [ u0; u1; u2; 99 ])

let test_rejects_cycle () =
  let g, u0, u1, u2, s3, s4 = fixture () in
  let tree =
    Ent_tree.of_channels
      (channels g [ [ u0; s3; u1 ]; [ u1; s4; u2 ]; [ u0; u2 ] ])
  in
  (* Three channels over three users: wrong count for a tree. *)
  check_bool "cycle rejected" false (Ent_tree.spans_users tree [ u0; u1; u2 ])

let test_rejects_disconnected_with_duplicate () =
  let g, u0, u1, u2, s3, _ = fixture () in
  (* Two copies of the same logical connection: count is right (2 = 3-1)
     but u2 is never reached. *)
  let tree =
    Ent_tree.of_channels (channels g [ [ u0; s3; u1 ]; [ u0; s3; u1 ] ])
  in
  check_bool "duplicate edge is not a tree" false
    (Ent_tree.spans_users tree [ u0; u1; u2 ])

let test_qubit_usage () =
  let g, u0, u1, u2, s3, s4 = fixture () in
  let tree =
    Ent_tree.of_channels (channels g [ [ u0; s3; u1 ]; [ u1; s4; u2 ] ])
  in
  Alcotest.(check (list (pair int int)))
    "two qubits per traversal"
    [ (s3, 2); (s4, 2) ]
    (Ent_tree.qubit_usage tree);
  (* Doubling up on one switch accumulates. *)
  let tree2 =
    Ent_tree.of_channels (channels g [ [ u0; s3; u1 ]; [ u0; s3; u1 ] ])
  in
  Alcotest.(check (list (pair int int)))
    "accumulated usage" [ (s3, 4) ]
    (Ent_tree.qubit_usage tree2)

let test_touches () =
  let g, u0, u1, u2, s3, s4 = fixture () in
  let tree = Ent_tree.of_channels (channels g [ [ u0; s3; u1 ] ]) in
  check_bool "touches interior switch" true (Ent_tree.touches tree s3);
  check_bool "touches endpoint" true (Ent_tree.touches tree u0);
  check_bool "does not touch u2" false (Ent_tree.touches tree u2);
  check_bool "does not touch s4" false (Ent_tree.touches tree s4)

let test_impossible_channel_zeroes_tree () =
  let g, u0, u1, _, s3, _ = fixture () in
  let p0 = Params.create ~alpha:1e-4 ~q:0. () in
  let dead = Channel.make_exn g p0 [ u0; s3; u1 ] in
  let tree = Ent_tree.of_channels [ dead ] in
  feq "zero rate propagates" 0. (Ent_tree.rate_prob tree);
  check_bool "neg log infinite" true (Ent_tree.rate_neg_log tree = infinity)

let () =
  Alcotest.run "ent_tree"
    [
      ( "rates",
        [
          Alcotest.test_case "Eq.2 product" `Quick test_eq2_product;
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "zero channel" `Quick
            test_impossible_channel_zeroes_tree;
        ] );
      ( "structure",
        [
          Alcotest.test_case "spans users" `Quick test_spans_users;
          Alcotest.test_case "rejects cycle" `Quick test_rejects_cycle;
          Alcotest.test_case "rejects duplicate" `Quick
            test_rejects_disconnected_with_duplicate;
          Alcotest.test_case "qubit usage" `Quick test_qubit_usage;
          Alcotest.test_case "touches" `Quick test_touches;
        ] );
    ]
