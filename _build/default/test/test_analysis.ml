(* Unit tests for Qnet_topology.Analysis — structural metrics. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_topology

let feq = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let triangle_plus_tail () =
  (* Vertices 0-1-2 form a triangle; 3 hangs off 2. *)
  let b = Graph.Builder.create () in
  let add () = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let v0 = add () and v1 = add () and v2 = add () and v3 = add () in
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  ignore (Graph.Builder.add_edge b v1 v2 1.);
  ignore (Graph.Builder.add_edge b v0 v2 1.);
  ignore (Graph.Builder.add_edge b v2 v3 2.);
  (Graph.Builder.freeze b, v0, v1, v2, v3)

let test_clustering () =
  let g, v0, v1, v2, v3 = triangle_plus_tail () in
  feq "triangle member" 1. (Analysis.clustering_coefficient g v0);
  feq "triangle member 2" 1. (Analysis.clustering_coefficient g v1);
  (* v2 has neighbours {0,1,3}: only (0,1) of 3 pairs linked. *)
  feq "hub" (1. /. 3.) (Analysis.clustering_coefficient g v2);
  feq "leaf" 0. (Analysis.clustering_coefficient g v3);
  feq "mean" ((1. +. 1. +. (1. /. 3.) +. 0.) /. 4.) (Analysis.mean_clustering g)

let test_hop_statistics () =
  let g, _, _, _, _ = triangle_plus_tail () in
  let avg, diameter = Analysis.hop_statistics g in
  check_int "diameter" 2 diameter;
  (* Pairwise hops: 01=1 02=1 12=1 23=1 03=2 13=2 (each counted both
     directions): mean = (4*1 + 2*2)/6 = 8/6. *)
  feq "average" (8. /. 6.) avg

let test_degree_histogram () =
  let g, _, _, _, _ = triangle_plus_tail () in
  Alcotest.(check (list (pair int int)))
    "histogram" [ (1, 1); (2, 2); (3, 1) ]
    (Analysis.degree_histogram g)

let test_summary_fields () =
  let g, _, _, _, _ = triangle_plus_tail () in
  let s = Analysis.summarize g in
  check_int "vertices" 4 s.Analysis.vertices;
  check_int "edges" 4 s.Analysis.edges;
  check_int "max degree" 3 s.Analysis.max_degree;
  feq "avg degree" 2. s.Analysis.average_degree;
  feq "avg fiber" 1.25 s.Analysis.average_fiber;
  check_bool "pp renders" true
    (String.length (Format.asprintf "%a" Analysis.pp_summary s) > 0)

let test_small_world_signature () =
  (* Watts–Strogatz (low beta): much higher clustering than a Waxman
     graph of the same size/degree, with short average paths. *)
  let spec = Spec.create ~n_users:10 ~n_switches:50 ~avg_degree:6. () in
  let ws =
    Watts_strogatz.generate
      ~params:{ Watts_strogatz.beta = 0.1; embedding = Watts_strogatz.Random }
      (Prng.create 3) spec
  in
  let wax = Waxman.generate (Prng.create 3) spec in
  let s_ws = Analysis.summarize ws in
  let s_wax = Analysis.summarize wax in
  check_bool
    (Printf.sprintf "WS clustering %.3f >> Waxman %.3f" s_ws.Analysis.clustering
       s_wax.Analysis.clustering)
    true
    (s_ws.Analysis.clustering > 2. *. s_wax.Analysis.clustering);
  check_bool "WS paths stay short (small world)" true
    (s_ws.Analysis.average_hops < 3. *. s_wax.Analysis.average_hops)

let test_power_law_signature () =
  (* Volchenkov: the max degree dwarfs the average. *)
  let spec = Spec.default in
  let g = Volchenkov.generate (Prng.create 5) spec in
  let s = Analysis.summarize g in
  check_bool "heavy tail" true
    (float_of_int s.Analysis.max_degree > 2.5 *. s.Analysis.average_degree)

let test_empty_and_singleton () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  let s = Analysis.summarize g in
  feq "no pairs, no hops" 0. s.Analysis.average_hops;
  check_int "diameter 0" 0 s.Analysis.diameter_hops;
  feq "no fibers" 0. s.Analysis.average_fiber

let () =
  Alcotest.run "analysis"
    [
      ( "metrics",
        [
          Alcotest.test_case "clustering" `Quick test_clustering;
          Alcotest.test_case "hops" `Quick test_hop_statistics;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "summary" `Quick test_summary_fields;
          Alcotest.test_case "degenerate" `Quick test_empty_and_singleton;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "small world" `Quick test_small_world_signature;
          Alcotest.test_case "power law" `Quick test_power_law_signature;
        ] );
    ]
