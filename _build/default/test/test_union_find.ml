(* Unit tests for Qnet_graph.Union_find. *)

module UF = Qnet_graph.Union_find

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_initial_state () =
  let uf = UF.create 5 in
  check_int "size" 5 (UF.size uf);
  check_int "all singletons" 5 (UF.count_sets uf);
  for i = 0 to 4 do
    check_int "own representative" i (UF.find uf i);
    check_int "singleton size" 1 (UF.set_size uf i)
  done

let test_union_merges () =
  let uf = UF.create 4 in
  check_bool "first union merges" true (UF.union uf 0 1);
  check_bool "redundant union" false (UF.union uf 0 1);
  check_bool "same" true (UF.same uf 0 1);
  check_bool "not same" false (UF.same uf 0 2);
  check_int "three sets" 3 (UF.count_sets uf);
  check_int "merged size" 2 (UF.set_size uf 1)

let test_transitive () =
  let uf = UF.create 6 in
  ignore (UF.union uf 0 1);
  ignore (UF.union uf 2 3);
  ignore (UF.union uf 1 2);
  check_bool "0 ~ 3 transitively" true (UF.same uf 0 3);
  check_int "set of four" 4 (UF.set_size uf 0);
  check_int "sets remaining" 3 (UF.count_sets uf)

let test_groups () =
  let uf = UF.create 5 in
  ignore (UF.union uf 0 4);
  ignore (UF.union uf 1 2);
  Alcotest.(check (list (list int)))
    "groups sorted by smallest member"
    [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ]
    (UF.groups uf)

let test_all_same () =
  let uf = UF.create 4 in
  check_bool "empty list" true (UF.all_same uf []);
  check_bool "singleton list" true (UF.all_same uf [ 2 ]);
  check_bool "not merged yet" false (UF.all_same uf [ 0; 1 ]);
  ignore (UF.union uf 0 1);
  ignore (UF.union uf 1 2);
  check_bool "three merged" true (UF.all_same uf [ 0; 1; 2 ]);
  check_bool "fourth outside" false (UF.all_same uf [ 0; 1; 2; 3 ])

let test_chain_collapse () =
  let n = 1000 in
  let uf = UF.create n in
  for i = 0 to n - 2 do
    ignore (UF.union uf i (i + 1))
  done;
  check_int "single set" 1 (UF.count_sets uf);
  check_int "full size" n (UF.set_size uf 0);
  check_bool "ends connected" true (UF.same uf 0 (n - 1))

let test_out_of_range () =
  let uf = UF.create 3 in
  Alcotest.check_raises "negative element"
    (Invalid_argument "Union_find: element out of range") (fun () ->
      ignore (UF.find uf (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Union_find: element out of range") (fun () ->
      ignore (UF.find uf 3))

let test_create_negative () =
  Alcotest.check_raises "negative size"
    (Invalid_argument "Union_find.create: negative size") (fun () ->
      ignore (UF.create (-1)))

let test_empty () =
  let uf = UF.create 0 in
  check_int "no sets" 0 (UF.count_sets uf);
  Alcotest.(check (list (list int))) "no groups" [] (UF.groups uf)

let () =
  Alcotest.run "union_find"
    [
      ( "basics",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "union" `Quick test_union_merges;
          Alcotest.test_case "transitive" `Quick test_transitive;
          Alcotest.test_case "chain" `Quick test_chain_collapse;
        ] );
      ( "queries",
        [
          Alcotest.test_case "groups" `Quick test_groups;
          Alcotest.test_case "all_same" `Quick test_all_same;
        ] );
      ( "edges",
        [
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "negative create" `Quick test_create_negative;
          Alcotest.test_case "empty" `Quick test_empty;
        ] );
    ]
