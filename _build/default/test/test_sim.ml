(* Unit tests for the qnet_sim library: Trial, Monte_carlo, Protocol. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core
module Trial = Qnet_sim.Trial
module Monte_carlo = Qnet_sim.Monte_carlo
module Protocol = Qnet_sim.Protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A two-channel tree over three users through two switches, with
   everything deterministic except the sampled events. *)
let fixture () =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0. in
  let u0 = user 0. in
  let u1 = user 2000. in
  let u2 = user 4000. in
  let s3 = switch 1000. in
  let s4 = switch 3000. in
  ignore (Graph.Builder.add_edge b u0 s3 1000.);
  ignore (Graph.Builder.add_edge b s3 u1 1000.);
  ignore (Graph.Builder.add_edge b u1 s4 1000.);
  ignore (Graph.Builder.add_edge b s4 u2 1000.);
  let g = Graph.Builder.freeze b in
  let params = Params.create ~alpha:1e-4 ~q:0.9 () in
  let tree =
    Ent_tree.of_channels
      [
        Channel.make_exn g params [ u0; s3; u1 ];
        Channel.make_exn g params [ u1; s4; u2 ];
      ]
  in
  (g, params, tree)

let test_trial_determinism () =
  let g, params, tree = fixture () in
  let run seed = (Trial.run (Prng.create seed) g params tree).Trial.success in
  List.iter
    (fun seed ->
      check_bool "same seed, same outcome" (run seed) (run seed))
    [ 1; 2; 3; 4; 5 ]

let test_trial_certain_success () =
  let g, _, tree = fixture () in
  (* alpha = 0 and q = 1: every event succeeds. *)
  let sure = Params.create ~alpha:0. ~q:1. () in
  for seed = 1 to 20 do
    check_bool "always succeeds" true
      (Trial.run (Prng.create seed) g sure tree).Trial.success
  done

let test_trial_certain_failure () =
  let g, _, tree = fixture () in
  let dead = Params.create ~alpha:0. ~q:0. () in
  for seed = 1 to 20 do
    check_bool "always fails (swaps)" false
      (Trial.run (Prng.create seed) g dead tree).Trial.success
  done

let test_trial_channel_outcomes () =
  let g, params, tree = fixture () in
  let t = Trial.run (Prng.create 3) g params tree in
  check_int "one outcome per channel" 2 (List.length t.Trial.channel_outcomes);
  check_bool "tree success = all channels" true
    (t.Trial.success
    = List.for_all Trial.channel_success t.Trial.channel_outcomes)

let test_estimate_within_ci () =
  let g, params, tree = fixture () in
  let est =
    Monte_carlo.estimate_rate (Prng.create 11) g params tree ~trials:200_000
  in
  check_bool "analytic inside Wilson CI" true est.Monte_carlo.within_ci;
  check_bool "p_hat sane" true
    (est.Monte_carlo.p_hat > 0. && est.Monte_carlo.p_hat < 1.);
  Alcotest.(check (float 1e-9))
    "analytic is Eq.2" (Ent_tree.rate_prob tree) est.Monte_carlo.analytic

let test_estimate_empty_tree () =
  let g, params, _ = fixture () in
  let empty = Ent_tree.of_channels [] in
  let est = Monte_carlo.estimate_rate (Prng.create 1) g params empty ~trials:100 in
  Alcotest.(check int) "all succeed" 100 est.Monte_carlo.successes

let test_estimate_invalid_trials () =
  let g, params, tree = fixture () in
  Alcotest.check_raises "trials > 0"
    (Invalid_argument "Monte_carlo.estimate_rate: trials <= 0") (fun () ->
      ignore (Monte_carlo.estimate_rate (Prng.create 1) g params tree ~trials:0))

let test_slots_until_success () =
  let g, params, tree = fixture () in
  (match
     Monte_carlo.slots_until_success (Prng.create 5) g params tree
       ~max_slots:1_000_000
   with
  | None -> Alcotest.fail "should eventually succeed"
  | Some s -> check_bool "positive slot index" true (s >= 1));
  (* Impossible tree times out. *)
  let dead = Params.create ~alpha:0. ~q:0. () in
  check_bool "timeout on impossible" true
    (Monte_carlo.slots_until_success (Prng.create 5) g dead tree ~max_slots:50
    = None)

let test_mean_slots_matches_geometric () =
  let g, params, tree = fixture () in
  let p = Ent_tree.rate_prob tree in
  match
    Monte_carlo.mean_slots (Prng.create 17) g params tree ~runs:3000
      ~max_slots:100_000
  with
  | None -> Alcotest.fail "all runs should converge"
  | Some mean ->
      let expected = 1. /. p in
      check_bool
        (Printf.sprintf "mean %.2f near 1/p = %.2f" mean expected)
        true
        (Float.abs (mean -. expected) < 0.1 *. expected)

let test_protocol_allocations () =
  let g, _, tree = fixture () in
  let allocations = Protocol.plan_allocations g tree in
  check_int "two switches allocated" 2 (List.length allocations);
  List.iter
    (fun (a : Protocol.allocation) ->
      check_int "2 qubits each" 2 a.Protocol.allocated;
      check_int "budget recorded" 4 a.Protocol.budget)
    allocations

let test_protocol_rejects_overcommit () =
  let g, params, _ = fixture () in
  (* Force both channels through switch s3 = vertex 3. *)
  let c = Channel.make_exn g params [ 0; 3; 1 ] in
  let over = Ent_tree.of_channels [ c; c; c ] in
  check_bool "overcommit detected" true
    (try
       ignore (Protocol.plan_allocations g over);
       false
     with Failure _ -> true)

let test_protocol_execute () =
  let g, params, tree = fixture () in
  let run =
    Protocol.execute (Prng.create 23) g params tree ~max_slots:100_000
  in
  (match run.Protocol.succeeded_at with
  | None -> Alcotest.fail "should succeed within the budget"
  | Some s ->
      check_int "slot count matches reports" s (List.length run.Protocol.slots));
  (* Exactly the last slot succeeds; all earlier ones failed. *)
  let rec split_last = function
    | [] -> ([], None)
    | [ x ] -> ([], Some x)
    | x :: rest ->
        let init, last = split_last rest in
        (x :: init, last)
  in
  let earlier, last = split_last run.Protocol.slots in
  (match last with
  | Some r -> check_bool "final slot succeeded" true r.Protocol.success
  | None -> Alcotest.fail "no slots");
  List.iter
    (fun (r : Protocol.slot_report) ->
      check_bool "earlier slots failed" false r.Protocol.success)
    earlier

let test_protocol_failure_accounting () =
  let g, _, tree = fixture () in
  (* q = 0: every slot must report swap failures or skipped swaps, and
     never succeed. *)
  let dead = Params.create ~alpha:0. ~q:0. () in
  let run = Protocol.execute (Prng.create 1) g dead tree ~max_slots:10 in
  check_bool "never succeeds" true (run.Protocol.succeeded_at = None);
  check_int "all slots executed" 10 (List.length run.Protocol.slots);
  List.iter
    (fun (r : Protocol.slot_report) ->
      check_bool "swap failures recorded" true
        (r.Protocol.swap_failures + r.Protocol.swaps_skipped > 0);
      check_int "no link failures at alpha 0" 0 r.Protocol.link_failures)
    run.Protocol.slots

let test_protocol_empirical_rate () =
  (* Channel-up frequency across many slots approximates Eq. (2). *)
  let g, params, tree = fixture () in
  let rng = Prng.create 31 in
  let successes = ref 0 in
  let slots = 50_000 in
  (* Run the protocol slot-by-slot without early exit by restarting. *)
  for _ = 1 to slots do
    let r = Protocol.execute rng g params tree ~max_slots:1 in
    if r.Protocol.succeeded_at = Some 1 then incr successes
  done;
  let p_hat = float_of_int !successes /. float_of_int slots in
  let p = Ent_tree.rate_prob tree in
  check_bool
    (Printf.sprintf "protocol frequency %.4f near analytic %.4f" p_hat p)
    true
    (Float.abs (p_hat -. p) < 0.01)

let () =
  Alcotest.run "sim"
    [
      ( "trial",
        [
          Alcotest.test_case "determinism" `Quick test_trial_determinism;
          Alcotest.test_case "certain success" `Quick test_trial_certain_success;
          Alcotest.test_case "certain failure" `Quick test_trial_certain_failure;
          Alcotest.test_case "channel outcomes" `Quick
            test_trial_channel_outcomes;
        ] );
      ( "monte carlo",
        [
          Alcotest.test_case "within CI" `Slow test_estimate_within_ci;
          Alcotest.test_case "empty tree" `Quick test_estimate_empty_tree;
          Alcotest.test_case "invalid trials" `Quick test_estimate_invalid_trials;
          Alcotest.test_case "slots until success" `Quick
            test_slots_until_success;
          Alcotest.test_case "geometric mean slots" `Slow
            test_mean_slots_matches_geometric;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "allocations" `Quick test_protocol_allocations;
          Alcotest.test_case "overcommit" `Quick test_protocol_rejects_overcommit;
          Alcotest.test_case "execute" `Quick test_protocol_execute;
          Alcotest.test_case "failure accounting" `Quick
            test_protocol_failure_accounting;
          Alcotest.test_case "empirical rate" `Slow test_protocol_empirical_rate;
        ] );
    ]
