(* Unit tests for Qnet_baselines.Nfusion. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Nfusion = Qnet_baselines.Nfusion
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let feq = Alcotest.(check (float 1e-9))
let params = Params.default

let network seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:6 ~n_switches:20 ~qubits_per_switch:4 ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_star_structure () =
  let g = network 1 in
  match Nfusion.solve g params with
  | None -> ()
  | Some r ->
      let users = Graph.users g in
      check_bool "center is a user" true (List.mem r.Nfusion.center users);
      check_int "one spoke per other user" (List.length users - 1)
        (Ent_tree.channel_count r.Nfusion.star);
      (* Every spoke has the center as an endpoint. *)
      List.iter
        (fun (c : Channel.t) ->
          check_bool "spoke touches center" true
            (c.Channel.src = r.Nfusion.center || c.Channel.dst = r.Nfusion.center))
        r.Nfusion.star.Ent_tree.channels

let test_fusion_penalty_applied () =
  let g = network 2 in
  match Nfusion.solve g params with
  | None -> ()
  | Some r ->
      let star_rate = Ent_tree.rate_neg_log r.Nfusion.star in
      feq "total = star + fusion"
        (star_rate +. r.Nfusion.fusion_neg_log)
        r.Nfusion.total_neg_log;
      check_bool "penalty positive for 6 users" true
        (r.Nfusion.fusion_neg_log > 0.);
      (* 6 users: 5 spokes fused -> q_f^4 with q_f = 0.75 * 0.9. *)
      feq "penalty exponent" (4. *. -.log (0.75 *. 0.9)) r.Nfusion.fusion_neg_log

let test_fusion_discount_configurable () =
  let g = network 2 in
  let lenient = { Nfusion.fusion_discount = 1.0 } in
  let harsh = { Nfusion.fusion_discount = 0.3 } in
  match (Nfusion.solve ~params:lenient g params, Nfusion.solve ~params:harsh g params)
  with
  | Some a, Some b ->
      check_bool "harsher fusion lowers rate" true
        (a.Nfusion.total_rate > b.Nfusion.total_rate)
  | _ -> Alcotest.fail "both should solve"

let test_invalid_discount () =
  let g = network 2 in
  Alcotest.check_raises "zero discount"
    (Invalid_argument "Nfusion.solve: fusion_discount outside (0, 1]")
    (fun () -> ignore (Nfusion.solve ~params:{ Nfusion.fusion_discount = 0. } g params))

let test_two_users_no_penalty () =
  (* Two users: a single channel, no GHZ fusion needed — BSM = 2-fusion
     degenerate case. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  let g = Graph.Builder.freeze b in
  match Nfusion.solve g params with
  | None -> Alcotest.fail "pair should solve"
  | Some r ->
      feq "no fusion penalty" 0. r.Nfusion.fusion_neg_log;
      feq "rate is the channel rate" (exp (-0.1)) r.Nfusion.total_rate

let test_capacity_failure () =
  (* Three users on a 2-qubit hub: no center can reach both others. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  check_bool "star infeasible" true (Nfusion.solve g params = None);
  feq "rate helper returns 0" 0. (Nfusion.rate None)

let test_below_muerp_algorithms () =
  (* On multi-user instances the fusion penalty must keep N-FUSION below
     Algorithm 3 — the paper's core comparative claim. *)
  let worse = ref 0 and total = ref 0 in
  for seed = 1 to 10 do
    let g = network (30 + seed) in
    match (Alg_conflict_free.solve g params, Nfusion.solve g params) with
    | Some t3, Some r ->
        incr total;
        if r.Nfusion.total_rate <= Ent_tree.rate_prob t3 +. 1e-12 then
          incr worse
    | _ -> ()
  done;
  check_bool "n-fusion never above alg3 on these instances" true
    (!worse = !total && !total > 0)

let test_rate_helper () =
  let g = network 4 in
  match Nfusion.solve g params with
  | None -> ()
  | Some r -> feq "rate of Some" r.Nfusion.total_rate (Nfusion.rate (Some r))

let () =
  Alcotest.run "nfusion"
    [
      ( "structure",
        [
          Alcotest.test_case "star" `Quick test_star_structure;
          Alcotest.test_case "two users" `Quick test_two_users_no_penalty;
          Alcotest.test_case "capacity failure" `Quick test_capacity_failure;
        ] );
      ( "fusion model",
        [
          Alcotest.test_case "penalty" `Quick test_fusion_penalty_applied;
          Alcotest.test_case "discount knob" `Quick
            test_fusion_discount_configurable;
          Alcotest.test_case "invalid discount" `Quick test_invalid_discount;
          Alcotest.test_case "below MUERP" `Quick test_below_muerp_algorithms;
          Alcotest.test_case "rate helper" `Quick test_rate_helper;
        ] );
    ]
