(* Unit tests for Qnet_sim.Decoherence — memory-cutoff link dynamics. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Decoherence = Qnet_sim.Decoherence
open Qnet_core

let check_bool = Alcotest.(check bool)

(* A 3-link channel with moderate per-link success, so memory matters. *)
let fixture () =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0. in
  let u0 = user 0. in
  let s1 = switch 4000. in
  let s2 = switch 8000. in
  let u1 = user 12000. in
  ignore (Graph.Builder.add_edge b u0 s1 4000.);
  ignore (Graph.Builder.add_edge b s1 s2 4000.);
  ignore (Graph.Builder.add_edge b s2 u1 4000.);
  let g = Graph.Builder.freeze b in
  let params = Params.create ~alpha:2e-4 ~q:0.9 () in
  (g, params, Channel.make_exn g params [ u0; s1; s2; u1 ])

let test_completion_eventually () =
  let g, params, c = fixture () in
  match
    Decoherence.channel_slots_to_completion (Prng.create 1) g params c
      ~cutoff:5 ~max_slots:1_000_000
  with
  | Some s -> check_bool "positive" true (s >= 1)
  | None -> Alcotest.fail "should complete"

let test_cutoff_zero_matches_synchronous () =
  let g, params, c = fixture () in
  let analytic = Decoherence.synchronous_reference c in
  match
    Decoherence.effective_rate (Prng.create 7) g params c ~cutoff:0
      ~runs:3_000 ~max_slots:1_000_000
  with
  | None -> Alcotest.fail "runs should all complete"
  | Some rate ->
      check_bool
        (Printf.sprintf "cutoff 0 (%.5f) tracks Eq.1 (%.5f)" rate analytic)
        true
        (Float.abs (rate -. analytic) < 0.25 *. analytic)

let test_memory_helps () =
  let g, params, c = fixture () in
  let rate cutoff =
    match
      Decoherence.effective_rate (Prng.create 11) g params c ~cutoff
        ~runs:1_500 ~max_slots:1_000_000
    with
    | Some r -> r
    | None -> Alcotest.fail "completion expected"
  in
  let r0 = rate 0 and r3 = rate 3 and r10 = rate 10 in
  check_bool "cutoff 3 beats synchronous" true (r3 > r0);
  check_bool "cutoff 10 beats cutoff 3" true (r10 > r3)

let test_validation () =
  let g, params, c = fixture () in
  Alcotest.check_raises "negative cutoff"
    (Invalid_argument
       "Decoherence.channel_slots_to_completion: negative cutoff") (fun () ->
      ignore
        (Decoherence.channel_slots_to_completion (Prng.create 1) g params c
           ~cutoff:(-1) ~max_slots:10));
  Alcotest.check_raises "bad max_slots"
    (Invalid_argument
       "Decoherence.channel_slots_to_completion: max_slots < 1") (fun () ->
      ignore
        (Decoherence.channel_slots_to_completion (Prng.create 1) g params c
           ~cutoff:0 ~max_slots:0));
  Alcotest.check_raises "bad runs"
    (Invalid_argument "Decoherence.effective_rate: runs < 1") (fun () ->
      ignore
        (Decoherence.effective_rate (Prng.create 1) g params c ~cutoff:0
           ~runs:0 ~max_slots:10))

let test_timeout () =
  let g, _, c = fixture () in
  (* q = 0: swaps never succeed, so a multi-hop channel never completes. *)
  let dead = Params.create ~alpha:2e-4 ~q:0. () in
  check_bool "timeout reported" true
    (Decoherence.channel_slots_to_completion (Prng.create 1) g dead c
       ~cutoff:5 ~max_slots:200
    = None);
  check_bool "effective rate propagates timeout" true
    (Decoherence.effective_rate (Prng.create 1) g dead c ~cutoff:5 ~runs:3
       ~max_slots:200
    = None)

let test_single_link_channel_ignores_cutoff () =
  (* One link, no swaps: slots-to-completion is geometric in the link
     probability regardless of cutoff. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:5000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 u1 5000.);
  let g = Graph.Builder.freeze b in
  let params = Params.create ~alpha:2e-4 ~q:0.9 () in
  let c = Channel.make_exn g params [ u0; u1 ] in
  let p = Channel.rate_prob c in
  List.iter
    (fun cutoff ->
      match
        Decoherence.effective_rate (Prng.create 3) g params c ~cutoff
          ~runs:3_000 ~max_slots:1_000_000
      with
      | None -> Alcotest.fail "completes"
      | Some r ->
          check_bool
            (Printf.sprintf "cutoff %d tracks p" cutoff)
            true
            (Float.abs (r -. p) < 0.25 *. p))
    [ 0; 5 ]

(* ---- Whole-tree dynamics ---- *)

let tree_fixture () =
  (* Two 2-link channels over distinct switches: u0-s-u1 and u1-s'-u2. *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0. in
  let u0 = user 0. in
  let u1 = user 6000. in
  let u2 = user 12000. in
  let s1 = switch 3000. in
  let s2 = switch 9000. in
  ignore (Graph.Builder.add_edge b u0 s1 3000.);
  ignore (Graph.Builder.add_edge b s1 u1 3000.);
  ignore (Graph.Builder.add_edge b u1 s2 3000.);
  ignore (Graph.Builder.add_edge b s2 u2 3000.);
  let g = Graph.Builder.freeze b in
  let params = Params.create ~alpha:2e-4 ~q:0.9 () in
  let tree =
    Ent_tree.of_channels
      [
        Channel.make_exn g params [ u0; s1; u1 ];
        Channel.make_exn g params [ u1; s2; u2 ];
      ]
  in
  (g, params, tree)

let test_tree_completion () =
  let g, params, tree = tree_fixture () in
  match
    Decoherence.tree_slots_to_completion (Prng.create 2) g params tree
      ~cutoff:3 ~tree_cutoff:5 ~max_slots:1_000_000
  with
  | Some s -> check_bool "completes" true (s >= 1)
  | None -> Alcotest.fail "tree should complete"

let test_tree_cutoff_zero_matches_eq2 () =
  let g, params, tree = tree_fixture () in
  let analytic = Ent_tree.rate_prob tree in
  match
    Decoherence.tree_effective_rate (Prng.create 5) g params tree ~cutoff:0
      ~tree_cutoff:0 ~runs:2_000 ~max_slots:1_000_000
  with
  | None -> Alcotest.fail "should complete"
  | Some rate ->
      check_bool
        (Printf.sprintf "synchronous tree %.5f tracks Eq.2 %.5f" rate analytic)
        true
        (Float.abs (rate -. analytic) < 0.3 *. analytic)

let test_tree_memory_helps () =
  let g, params, tree = tree_fixture () in
  let rate tree_cutoff =
    match
      Decoherence.tree_effective_rate (Prng.create 7) g params tree ~cutoff:3
        ~tree_cutoff ~runs:1_000 ~max_slots:1_000_000
    with
    | Some r -> r
    | None -> Alcotest.fail "completes"
  in
  check_bool "waiting channels help the tree" true (rate 10 > rate 0)

let test_tree_empty () =
  let g, params, _ = tree_fixture () in
  Alcotest.(check (option int))
    "empty tree completes immediately" (Some 1)
    (Decoherence.tree_slots_to_completion (Prng.create 1) g params
       (Ent_tree.of_channels []) ~cutoff:0 ~tree_cutoff:0 ~max_slots:5)

let () =
  Alcotest.run "decoherence"
    [
      ( "dynamics",
        [
          Alcotest.test_case "completes" `Quick test_completion_eventually;
          Alcotest.test_case "cutoff 0 = synchronous" `Slow
            test_cutoff_zero_matches_synchronous;
          Alcotest.test_case "memory helps" `Slow test_memory_helps;
          Alcotest.test_case "single link" `Slow
            test_single_link_channel_ignores_cutoff;
        ] );
      ( "edges",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "timeout" `Quick test_timeout;
        ] );
      ( "trees",
        [
          Alcotest.test_case "completion" `Quick test_tree_completion;
          Alcotest.test_case "cutoff 0 = Eq.2" `Slow
            test_tree_cutoff_zero_matches_eq2;
          Alcotest.test_case "memory helps" `Slow test_tree_memory_helps;
          Alcotest.test_case "empty tree" `Quick test_tree_empty;
        ] );
    ]
