(* Unit tests for Qnet_core.Redundancy — parallel backup channels. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let feq = Alcotest.(check (float 1e-12))
let params = Params.default

let test_group_success_closed_form () =
  (* Two channels of rates p1, p2: success = 1 - (1-p1)(1-p2). *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x y = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y in
  let u0 = user 0. in
  let u1 = user 2000. in
  let s2 = switch 1000. 0. in
  let s3 = switch 1000. 500. in
  ignore (Graph.Builder.add_edge b u0 s2 1000.);
  ignore (Graph.Builder.add_edge b s2 u1 1000.);
  ignore (Graph.Builder.add_edge b u0 s3 1200.);
  ignore (Graph.Builder.add_edge b s3 u1 1200.);
  let g = Graph.Builder.freeze b in
  let c1 = Channel.make_exn g params [ u0; s2; u1 ] in
  let c2 = Channel.make_exn g params [ u0; s3; u1 ] in
  let p1 = Channel.rate_prob c1 and p2 = Channel.rate_prob c2 in
  feq "closed form"
    (-.log (1. -. ((1. -. p1) *. (1. -. p2))))
    (Redundancy.group_success_neg_log [ c1; c2 ]);
  feq "single channel is its own rate" (-.log p1)
    (Redundancy.group_success_neg_log [ c1 ]);
  check_bool "empty group impossible" true
    (Redundancy.group_success_neg_log [] = infinity)

(* Fixture: a pair with one primary relay and one spare relay, so
   exactly one backup can be added. *)
let backed_pair () =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch y = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y in
  let u0 = user 0. in
  let u1 = user 2000. in
  let s_main = switch 0. in
  let s_spare = switch 600. in
  ignore (Graph.Builder.add_edge b u0 s_main 1000.);
  ignore (Graph.Builder.add_edge b s_main u1 1000.);
  ignore (Graph.Builder.add_edge b u0 s_spare 1200.);
  ignore (Graph.Builder.add_edge b s_spare u1 1200.);
  (Graph.Builder.freeze b, u0, u1, s_main, s_spare)

let test_boost_adds_backup () =
  let g, u0, u1, s_main, s_spare = backed_pair () in
  let tree = Ent_tree.of_channels [ Channel.make_exn g params [ u0; s_main; u1 ] ] in
  let boosted = Redundancy.boost g params tree in
  check_int "one backup" 1 boosted.Redundancy.backups_added;
  check_bool "rate improves" true
    (boosted.Redundancy.rate > Ent_tree.rate_prob tree);
  (match boosted.Redundancy.groups with
  | [ group ] ->
      check_int "two channels in the group" 2
        (List.length group.Redundancy.channels);
      check_bool "backup uses the spare relay" true
        (List.exists
           (fun (c : Channel.t) -> List.mem s_spare c.Channel.path)
           group.Redundancy.channels)
  | _ -> Alcotest.fail "one group expected");
  (* Capacity accounting: both 2-qubit relays fully used, none over. *)
  Alcotest.(check (list (pair int int)))
    "full but legal usage"
    [ (s_main, 2); (s_spare, 2) ]
    (Redundancy.qubit_usage boosted)

let test_max_backups_zero () =
  let g, u0, u1, s_main, _ = backed_pair () in
  let tree = Ent_tree.of_channels [ Channel.make_exn g params [ u0; s_main; u1 ] ] in
  let boosted = Redundancy.boost ~max_backups:0 g params tree in
  check_int "no backups" 0 boosted.Redundancy.backups_added;
  feq "rate unchanged" (Ent_tree.rate_prob tree) boosted.Redundancy.rate

let test_boost_rejects_invalid_tree () =
  let g, u0, u1, s_main, _ = backed_pair () in
  let c = Channel.make_exn g params [ u0; s_main; u1 ] in
  let over = Ent_tree.of_channels [ c; c ] in
  Alcotest.check_raises "overcommitted tree"
    (Invalid_argument "Redundancy.boost: tree exceeds switch budgets")
    (fun () -> ignore (Redundancy.boost g params over))

let test_direct_fibers_not_duplicated () =
  (* Pair joined by a direct fiber only: no backup may be added (a free
     duplicate would loop forever / degenerate). *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1000. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  let g = Graph.Builder.freeze b in
  let tree = Ent_tree.of_channels [ Channel.make_exn g params [ u0; u1 ] ] in
  let boosted = Redundancy.boost g params tree in
  check_int "no free duplicates" 0 boosted.Redundancy.backups_added

let test_solve_on_random_networks () =
  for seed = 1 to 10 do
    let rng = Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:6 ~n_switches:20
        ~qubits_per_switch:6 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match (Alg_conflict_free.solve g params, Redundancy.solve g params) with
    | Some tree, Some boosted ->
        check_bool "boost never hurts" true
          (boosted.Redundancy.rate >= Ent_tree.rate_prob tree -. 1e-15);
        (* Aggregate usage within budgets. *)
        List.iter
          (fun (s, used) ->
            check_bool "capacity" true (used <= Graph.qubits g s))
          (Redundancy.qubit_usage boosted);
        check_int "one group per tree edge"
          (Ent_tree.channel_count tree)
          (List.length boosted.Redundancy.groups)
    | None, None -> ()
    | _ -> Alcotest.fail "solve/boost disagree on feasibility"
  done

let test_backups_target_weakest_edge () =
  let g, u0, u1, s_main, _ = backed_pair () in
  let tree = Ent_tree.of_channels [ Channel.make_exn g params [ u0; s_main; u1 ] ] in
  let boosted = Redundancy.boost ~max_backups:1 g params tree in
  (* With a single group it trivially targets it; check the group's
     success equals the closed form of its two channels. *)
  match boosted.Redundancy.groups with
  | [ group ] ->
      feq "group neg-log consistent"
        (Redundancy.group_success_neg_log group.Redundancy.channels)
        group.Redundancy.success_neg_log
  | _ -> Alcotest.fail "one group"

let () =
  Alcotest.run "redundancy"
    [
      ( "model",
        [
          Alcotest.test_case "group success" `Quick
            test_group_success_closed_form;
        ] );
      ( "boost",
        [
          Alcotest.test_case "adds backup" `Quick test_boost_adds_backup;
          Alcotest.test_case "max zero" `Quick test_max_backups_zero;
          Alcotest.test_case "invalid tree" `Quick
            test_boost_rejects_invalid_tree;
          Alcotest.test_case "no free duplicates" `Quick
            test_direct_fibers_not_duplicated;
          Alcotest.test_case "random networks" `Quick
            test_solve_on_random_networks;
          Alcotest.test_case "weakest edge" `Quick
            test_backups_target_weakest_edge;
        ] );
    ]
