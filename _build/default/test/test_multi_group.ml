(* Unit tests for Qnet_core.Multi_group — concurrent entanglement
   groups. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network ?(users = 9) ?(qubits = 4) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:30
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let partition k users =
  let rec chunk = function
    | [] -> []
    | l ->
        let rec take n = function
          | [] -> ([], [])
          | x :: rest when n > 0 ->
              let a, b = take (n - 1) rest in
              (x :: a, b)
          | rest -> ([], rest)
        in
        let head, tail = take k l in
        head :: chunk tail
  in
  List.filter (fun c -> c <> []) (chunk users)

let test_validation () =
  let g = network 1 in
  Alcotest.check_raises "no groups"
    (Invalid_argument "Multi_group.solve: no groups") (fun () ->
      ignore (Multi_group.solve g params ~groups:[]));
  Alcotest.check_raises "empty group"
    (Invalid_argument "Multi_group.solve: empty group") (fun () ->
      ignore (Multi_group.solve g params ~groups:[ [] ]));
  let u = List.hd (Graph.users g) in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Multi_group.solve: groups overlap") (fun () ->
      ignore (Multi_group.solve g params ~groups:[ [ u ]; [ u ] ]));
  let s = List.hd (Graph.switches g) in
  Alcotest.check_raises "switch member"
    (Invalid_argument "Multi_group.solve: group member is not a user")
    (fun () -> ignore (Multi_group.solve g params ~groups:[ [ s ] ]))

let check_result g (r : Multi_group.t) =
  (* Aggregate switch usage over all served groups respects budgets. *)
  let usage = Hashtbl.create 16 in
  List.iter
    (fun (gr : Multi_group.group_result) ->
      match gr.Multi_group.tree with
      | None -> ()
      | Some tree ->
          check_bool "group spanned" true
            (Ent_tree.spans_users tree gr.Multi_group.group);
          List.iter
            (fun (s, n) ->
              Hashtbl.replace usage s
                (n + (try Hashtbl.find usage s with Not_found -> 0)))
            (Ent_tree.qubit_usage tree))
    r.Multi_group.groups;
  Hashtbl.iter
    (fun s n ->
      check_bool
        (Printf.sprintf "shared capacity at switch %d" s)
        true
        (n <= Graph.qubits g s))
    usage

let test_sequential_valid () =
  for seed = 1 to 10 do
    let g = network seed in
    let groups = partition 3 (Graph.users g) in
    let r = Multi_group.solve ~strategy:Multi_group.Sequential g params ~groups in
    check_result g r;
    check_int "one result per group" (List.length groups)
      (List.length r.Multi_group.groups)
  done

let test_round_robin_valid () =
  for seed = 1 to 10 do
    let g = network seed in
    let groups = partition 3 (Graph.users g) in
    let r = Multi_group.solve ~strategy:Multi_group.Round_robin g params ~groups in
    check_result g r
  done

let test_single_group_matches_prim () =
  (* One group covering all users degenerates to Algorithm 4. *)
  let g = network 5 in
  let users = Graph.users g in
  let r = Multi_group.solve g params ~groups:[ users ] in
  let direct = Alg_prim.solve ~start:(List.hd users) g params in
  match (r.Multi_group.groups, direct) with
  | [ { Multi_group.tree = Some t1; _ } ], Some t2 ->
      Alcotest.(check (float 1e-9))
        "same rate as Algorithm 4"
        (Ent_tree.rate_neg_log t2) (Ent_tree.rate_neg_log t1)
  | [ { Multi_group.tree = None; _ } ], None -> ()
  | _ -> Alcotest.fail "disagreement with Algorithm 4"

let test_summary_fields () =
  let g = network 7 in
  let groups = partition 3 (Graph.users g) in
  let r = Multi_group.solve g params ~groups in
  let served_rates =
    List.filter_map
      (fun (gr : Multi_group.group_result) ->
        match gr.Multi_group.tree with None -> None | Some _ -> Some gr.Multi_group.rate)
      r.Multi_group.groups
  in
  let expected_min =
    List.fold_left Float.min
      (if List.length served_rates = List.length groups then 1. else 0.)
      (List.map
         (fun (gr : Multi_group.group_result) -> gr.Multi_group.rate)
         r.Multi_group.groups)
  in
  Alcotest.(check (float 1e-12)) "min rate" expected_min r.Multi_group.min_rate;
  check_bool "all_feasible consistent" true
    (r.Multi_group.all_feasible
    = List.for_all
        (fun (gr : Multi_group.group_result) -> gr.Multi_group.tree <> None)
        r.Multi_group.groups)

let test_capacity_contention () =
  (* Two pairs forced through the same 2-qubit hub: only one can be
     served. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let a0 = user 0. 0. in
  let a1 = user 2000. 0. in
  let b0 = user 0. 1000. in
  let b1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1200.))
    [ a0; a1; b0; b1 ];
  let g = Graph.Builder.freeze b in
  let r = Multi_group.solve g params ~groups:[ [ a0; a1 ]; [ b0; b1 ] ] in
  let served =
    List.length
      (List.filter
         (fun (gr : Multi_group.group_result) -> gr.Multi_group.tree <> None)
         r.Multi_group.groups)
  in
  check_int "exactly one group served" 1 served;
  check_bool "not all feasible" false r.Multi_group.all_feasible;
  Alcotest.(check (float 0.)) "min rate is 0" 0. r.Multi_group.min_rate

let test_failed_group_rolls_back () =
  (* Contended hub again, but the second group has an alternate relay:
     sequential order serves group A through the hub, then group B must
     still succeed via its relay — and if B had grabbed the hub first
     and failed later, rollback would matter.  Construct the rollback
     case directly: group B is a triangle that cannot complete, and its
     partial consumption must not block group C. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let b0 = user 0. 0. in
  let b1 = user 2000. 0. in
  let b2 = user 9500. 9500. (* unreachable *) in
  let c0 = user 0. 1000. in
  let c1 = user 2000. 1000. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:500.
  in
  List.iter
    (fun u -> ignore (Graph.Builder.add_edge b u hub 1300.))
    [ b0; b1; c0; c1 ];
  let g = Graph.Builder.freeze b in
  (* Group B = {b0, b1, b2}: b2 unreachable, so B fails after possibly
     consuming the hub for b0-b1.  Group C = {c0, c1} then needs the
     hub. *)
  let r =
    Multi_group.solve ~strategy:Multi_group.Sequential g params
      ~groups:[ [ b0; b1; b2 ]; [ c0; c1 ] ]
  in
  (match r.Multi_group.groups with
  | [ gb; gc ] ->
      check_bool "B failed" true (gb.Multi_group.tree = None);
      check_bool "C served thanks to rollback" true
        (gc.Multi_group.tree <> None)
  | _ -> Alcotest.fail "two groups expected")

let () =
  Alcotest.run "multi_group"
    [
      ("validation", [ Alcotest.test_case "inputs" `Quick test_validation ]);
      ( "strategies",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_valid;
          Alcotest.test_case "round robin" `Quick test_round_robin_valid;
          Alcotest.test_case "single group = alg4" `Quick
            test_single_group_matches_prim;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "summary" `Quick test_summary_fields;
          Alcotest.test_case "contention" `Quick test_capacity_contention;
          Alcotest.test_case "rollback" `Quick test_failed_group_rolls_back;
        ] );
    ]
