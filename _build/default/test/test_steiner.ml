(* Unit tests for Qnet_graph.Steiner (KMB heuristic). *)

module Graph = Qnet_graph.Graph
module Steiner = Qnet_graph.Steiner

let weight (e : Graph.edge) = e.Graph.length
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Three terminals around a cheap hub, with expensive direct edges:
   the Steiner tree should use the hub. *)
let hub_graph () =
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let t0 = add () and t1 = add () and t2 = add () and hub = add () in
  ignore (Graph.Builder.add_edge b t0 hub 1.);
  ignore (Graph.Builder.add_edge b t1 hub 1.);
  ignore (Graph.Builder.add_edge b t2 hub 1.);
  ignore (Graph.Builder.add_edge b t0 t1 10.);
  ignore (Graph.Builder.add_edge b t1 t2 10.);
  (Graph.Builder.freeze b, [ t0; t1; t2 ], hub)

let test_uses_steiner_point () =
  let g, terminals, hub = hub_graph () in
  match Steiner.kmb g ~terminals ~weight with
  | None -> Alcotest.fail "expected a tree"
  | Some r ->
      Alcotest.(check (float 1e-9)) "hub tree weight" 3. r.Steiner.weight;
      check_int "three edges" 3 (List.length r.Steiner.tree_edges);
      check_int "hub degree 3" 3 (Steiner.tree_degree r.Steiner.tree_edges hub);
      check_bool "spans terminals" true
        (Steiner.spans r.Steiner.tree_edges terminals)

let test_prunes_non_terminal_leaves () =
  (* A dangling path off the tree must not appear. *)
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let t0 = add () and t1 = add () and mid = add () and dangle = add () in
  ignore (Graph.Builder.add_edge b t0 mid 1.);
  ignore (Graph.Builder.add_edge b mid t1 1.);
  ignore (Graph.Builder.add_edge b mid dangle 1.);
  let g = Graph.Builder.freeze b in
  match Steiner.kmb g ~terminals:[ t0; t1 ] ~weight with
  | None -> Alcotest.fail "expected a tree"
  | Some r ->
      check_int "only path edges" 2 (List.length r.Steiner.tree_edges);
      check_int "dangle excluded" 0 (Steiner.tree_degree r.Steiner.tree_edges dangle)

let test_unreachable_terminals () =
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let t0 = add () and t1 = add () in
  let g = Graph.Builder.freeze b in
  check_bool "disconnected gives None" true
    (Steiner.kmb g ~terminals:[ t0; t1 ] ~weight = None)

let test_single_terminal () =
  let g, terminals, _ = hub_graph () in
  match Steiner.kmb g ~terminals:[ List.hd terminals ] ~weight with
  | None -> Alcotest.fail "singleton should succeed"
  | Some r ->
      check_int "empty tree" 0 (List.length r.Steiner.tree_edges);
      Alcotest.(check (float 1e-9)) "zero weight" 0. r.Steiner.weight

let test_two_terminals_shortest_path () =
  let g, terminals, _ = hub_graph () in
  match terminals with
  | [ t0; t1; _ ] -> begin
      match Steiner.kmb g ~terminals:[ t0; t1 ] ~weight with
      | None -> Alcotest.fail "expected path"
      | Some r ->
          (* Path through hub (1+1=2) beats the direct edge (10). *)
          Alcotest.(check (float 1e-9)) "shortest path weight" 2. r.Steiner.weight
    end
  | _ -> Alcotest.fail "fixture"

let test_duplicate_terminals () =
  let g, terminals, _ = hub_graph () in
  let doubled = terminals @ terminals in
  match (Steiner.kmb g ~terminals:doubled ~weight, Steiner.kmb g ~terminals ~weight)
  with
  | Some r1, Some r2 ->
      Alcotest.(check (float 1e-9))
        "duplicates ignored" r2.Steiner.weight r1.Steiner.weight
  | _ -> Alcotest.fail "both should solve"

let test_empty_terminals_rejected () =
  let g, _, _ = hub_graph () in
  Alcotest.check_raises "no terminals"
    (Invalid_argument "Steiner.kmb: no terminals") (fun () ->
      ignore (Steiner.kmb g ~terminals:[] ~weight))

let test_spans_helper () =
  let g, terminals, _ = hub_graph () in
  let all = Graph.fold_edges g ~init:[] ~f:(fun acc e -> e :: acc) in
  check_bool "full edge set spans" true (Steiner.spans all terminals);
  check_bool "empty set spans single" true (Steiner.spans [] [ 0 ]);
  check_bool "empty set fails pair" false (Steiner.spans [] [ 0; 1 ])

let () =
  Alcotest.run "steiner"
    [
      ( "kmb",
        [
          Alcotest.test_case "uses steiner point" `Quick test_uses_steiner_point;
          Alcotest.test_case "prunes leaves" `Quick
            test_prunes_non_terminal_leaves;
          Alcotest.test_case "unreachable" `Quick test_unreachable_terminals;
          Alcotest.test_case "single terminal" `Quick test_single_terminal;
          Alcotest.test_case "two terminals" `Quick
            test_two_terminals_shortest_path;
          Alcotest.test_case "duplicates" `Quick test_duplicate_terminals;
          Alcotest.test_case "empty rejected" `Quick
            test_empty_terminals_rejected;
        ] );
      ("helpers", [ Alcotest.test_case "spans" `Quick test_spans_helper ]);
    ]
