(* Unit tests for Qnet_graph.Dot. *)

module Graph = Qnet_graph.Graph
module Dot = Qnet_graph.Dot

let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  scan 0

let fixture () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let s2 =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:1000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 s2 1000.);
  ignore (Graph.Builder.add_edge b s2 u1 1000.);
  (Graph.Builder.freeze b, u0, u1, s2)

let test_document_structure () =
  let g, _, _, _ = fixture () in
  let dot = Dot.to_dot g in
  check_bool "opens graph block" true (contains dot "graph qnet {");
  check_bool "closes block" true (contains dot "}\n");
  check_bool "user node as circle" true (contains dot "shape=circle");
  check_bool "switch node as box with qubits" true (contains dot "s2\\nQ=4");
  check_bool "edges present" true (contains dot "n0 -- n2");
  check_bool "lengths labelled" true (contains dot "label=\"1000\"")

let test_custom_name () =
  let g, _, _, _ = fixture () in
  check_bool "custom graph name" true
    (contains (Dot.to_dot ~graph_name:"mynet" g) "graph mynet {")

let test_highlight_paths () =
  let g, u0, u1, s2 = fixture () in
  let dot = Dot.to_dot ~highlight_paths:[ [ u0; s2; u1 ] ] g in
  check_bool "overlay drawn" true (contains dot "penwidth=3");
  check_bool "first palette color" true (contains dot "#d62728")

let test_highlight_skips_missing_edges () =
  let g, u0, u1, _ = fixture () in
  (* u0-u1 has no fiber: the overlay silently skips it. *)
  let dot = Dot.to_dot ~highlight_paths:[ [ u0; u1 ] ] g in
  check_bool "no overlay for absent edge" false (contains dot "penwidth=3")

let test_multiple_paths_distinct_colors () =
  let g, u0, u1, s2 = fixture () in
  let dot =
    Dot.to_dot ~highlight_paths:[ [ u0; s2 ]; [ s2; u1 ] ] g
  in
  check_bool "color one" true (contains dot "#d62728");
  check_bool "color two" true (contains dot "#1f77b4")

let () =
  Alcotest.run "dot"
    [
      ( "rendering",
        [
          Alcotest.test_case "structure" `Quick test_document_structure;
          Alcotest.test_case "custom name" `Quick test_custom_name;
          Alcotest.test_case "highlight" `Quick test_highlight_paths;
          Alcotest.test_case "missing edges" `Quick
            test_highlight_skips_missing_edges;
          Alcotest.test_case "palette" `Quick
            test_multiple_paths_distinct_colors;
        ] );
    ]
