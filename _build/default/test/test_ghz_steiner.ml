(* Unit tests for Qnet_baselines.Ghz_steiner — fusion-tree GHZ
   distribution. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Ghz = Qnet_baselines.Ghz_steiner
module Nfusion = Qnet_baselines.Nfusion
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let feq = Alcotest.(check (float 1e-9))
let params = Params.default

(* Three users on a generous central hub: the fusion tree is the star. *)
let star_fixture hub_qubits =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:hub_qubits ~x:1000.
      ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1000.);
  ignore (Graph.Builder.add_edge b u1 hub 1000.);
  ignore (Graph.Builder.add_edge b u2 hub 1000.);
  (Graph.Builder.freeze b, u0, u1, u2, hub)

let test_star_closed_form () =
  let g, _, _, _, hub = star_fixture 3 in
  match Ghz.solve g params with
  | None -> Alcotest.fail "star should be feasible"
  | Some r ->
      check_int "three tree edges" 3 (List.length r.Ghz.tree_edges);
      Alcotest.(check (list (pair int int)))
        "hub fuses three" [ (hub, 3) ] r.Ghz.fusion_switches;
      (* Rate = e^{-3 alpha L} * q_f^2 with q_f = 0.75 * 0.9. *)
      let q_f = 0.75 *. 0.9 in
      feq "closed form"
        (exp (-3. *. 1e-4 *. 1000.) *. (q_f ** 2.))
        r.Ghz.total_rate

let test_insufficient_hub_memory () =
  let g, _, _, _, _ = star_fixture 2 in
  (* The hub needs 3 qubits to fuse 3 links. *)
  check_bool "2-qubit hub infeasible" true (Ghz.solve g params = None);
  feq "rate helper" 0. (Ghz.rate None)

let test_trivial_sizes () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  match Ghz.solve g params with
  | Some r -> feq "single user rate 1" 1. r.Ghz.total_rate
  | None -> Alcotest.fail "trivial"

let test_degree2_relays_act_as_swaps () =
  (* Two users joined through one relay: fusion tree = path, relay does
     a 2-fusion (one factor of q_f). *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let relay =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 relay 1000.);
  ignore (Graph.Builder.add_edge b relay u1 1000.);
  let g = Graph.Builder.freeze b in
  match Ghz.solve g params with
  | None -> Alcotest.fail "path feasible"
  | Some r ->
      feq "one 2-fusion"
        (exp (-2. *. 1e-4 *. 1000.) *. (0.75 *. 0.9))
        r.Ghz.total_rate

let test_internal_user_fuses () =
  (* Users in a line: the middle user fuses its two pairs (one 2-fusion
     factor), mirroring Nfusion's fusing central user. *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let u0 = user 0. in
  let u1 = user 1000. in
  let u2 = user 2000. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  ignore (Graph.Builder.add_edge b u1 u2 1000.);
  let g = Graph.Builder.freeze b in
  match Ghz.solve g params with
  | None -> Alcotest.fail "fusing user makes this feasible"
  | Some r ->
      Alcotest.(check (list (pair int int)))
        "middle user fuses" [ (u1, 2) ] r.Ghz.fusion_switches;
      feq "one 2-fusion over two links"
        (exp (-2. *. 1e-4 *. 1000.) *. (0.75 *. 0.9))
        r.Ghz.total_rate

let test_tradeoff_against_central_user_star () =
  (* The Steiner fusion tree uses shorter pairs but pays the fusion
     discount at every degree-2 relay, where Nfusion's star channels
     relay with full-strength BSMs.  Neither dominates: each must win
     on some networks, and both must be feasible on most. *)
  let steiner_wins = ref 0 and star_wins = ref 0 and comparable = ref 0 in
  for seed = 1 to 20 do
    let rng = Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:6 ~n_switches:25
        ~qubits_per_switch:6 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    let star = Nfusion.rate (Nfusion.solve g params) in
    let steiner = Ghz.rate (Ghz.solve g params) in
    if star > 0. && steiner > 0. then begin
      incr comparable;
      if steiner >= star then incr steiner_wins else incr star_wins
    end
  done;
  check_bool "mostly comparable" true (!comparable >= 15);
  check_bool
    (Printf.sprintf "genuine trade-off (steiner %d, star %d)" !steiner_wins
       !star_wins)
    true
    (!steiner_wins > 0 && !star_wins > 0)

let test_still_below_muerp () =
  (* Even the stronger fusion baseline stays below Algorithm 3, the
     paper's qualitative point about BSM-tree routing vs GHZ fusion. *)
  let below = ref 0 and total = ref 0 in
  for seed = 1 to 15 do
    let rng = Prng.create (100 + seed) in
    let spec =
      Qnet_topology.Spec.create ~n_users:8 ~n_switches:30
        ~qubits_per_switch:6 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match (Alg_conflict_free.solve g params, Ghz.solve g params) with
    | Some t3, Some r ->
        incr total;
        if r.Ghz.total_rate <= Ent_tree.rate_prob t3 +. 1e-12 then incr below
    | _ -> ()
  done;
  check_bool "fusion tree below alg3 on all instances" true
    (!total > 0 && !below = !total)

let () =
  Alcotest.run "ghz_steiner"
    [
      ( "model",
        [
          Alcotest.test_case "star closed form" `Quick test_star_closed_form;
          Alcotest.test_case "memory bound" `Quick test_insufficient_hub_memory;
          Alcotest.test_case "trivial" `Quick test_trivial_sizes;
          Alcotest.test_case "2-fusion relay" `Quick
            test_degree2_relays_act_as_swaps;
          Alcotest.test_case "internal user" `Quick test_internal_user_fuses;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "trade-off vs central star" `Quick
            test_tradeoff_against_central_user_star;
          Alcotest.test_case "below MUERP" `Quick test_still_below_muerp;
        ] );
    ]
