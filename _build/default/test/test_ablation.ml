(* Unit tests for Qnet_experiments.Ablation: every ablation renders and
   reports directionally sane numbers at small replication counts. *)

module Config = Qnet_experiments.Config
module Ablation = Qnet_experiments.Ablation
module Table = Qnet_util.Table
module Spec = Qnet_topology.Spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_cfg =
  Config.create
    ~spec:(Spec.create ~n_users:5 ~n_switches:15 ())
    ~replications:3 ()

let rows table =
  (* Rendered table line count minus header and separator. *)
  List.length (String.split_on_char '\n' (Table.to_string table)) - 2

let parse_cell table ~row ~col =
  let lines = String.split_on_char '\n' (Table.to_string table) in
  let line = List.nth lines (row + 2) in
  let cells =
    String.split_on_char '|' line
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.nth cells col

let test_waxman_alpha () =
  let t = Ablation.waxman_alpha ~cfg:tiny_cfg ~alphas:[ 0.05; 0.3 ] () in
  check_int "two rows" 2 (rows t);
  (* Larger alpha_w means longer fibers on average. *)
  let len0 = float_of_string (parse_cell t ~row:0 ~col:1) in
  let len1 = float_of_string (parse_cell t ~row:1 ~col:1) in
  check_bool "fiber length grows with alpha_w" true (len1 > len0)

let test_eqcast_order () =
  let t = Ablation.eqcast_order ~cfg:tiny_cfg () in
  check_int "two orders" 2 (rows t)

let test_nfusion_discount () =
  let t = Ablation.nfusion_discount ~cfg:tiny_cfg ~discounts:[ 1.0; 0.3 ] () in
  check_int "two rows" 2 (rows t);
  let high = float_of_string (parse_cell t ~row:0 ~col:1) in
  let low = float_of_string (parse_cell t ~row:1 ~col:1) in
  check_bool "harsher discount lowers the rate" true (low <= high)

let test_prim_start () =
  let t = Ablation.prim_start ~cfg:tiny_cfg ~seeds:[ 1; 2 ] () in
  check_int "two seeds" 2 (rows t)

let test_alg2_boost () =
  let t = Ablation.alg2_boost ~cfg:tiny_cfg () in
  check_int "two conventions" 2 (rows t);
  let boosted = float_of_string (parse_cell t ~row:0 ~col:1) in
  let plain = float_of_string (parse_cell t ~row:1 ~col:1) in
  check_bool "boost never hurts" true (boosted >= plain)

let test_fidelity_threshold () =
  let t =
    Ablation.fidelity_threshold ~cfg:tiny_cfg ~thresholds:[ 0.5; 0.95 ] ()
  in
  check_int "two thresholds" 2 (rows t);
  let loose = float_of_string (parse_cell t ~row:0 ~col:2) in
  let tight = float_of_string (parse_cell t ~row:1 ~col:2) in
  check_bool "tighter threshold never raises rate" true (tight <= loose +. 1e-12)

let test_multi_group_strategy () =
  let t =
    Ablation.multi_group_strategy ~cfg:tiny_cfg ~n_groups:2 ~group_size:2 ()
  in
  check_int "two strategies" 2 (rows t)

let test_all_runs () =
  let tables = Ablation.all ~cfg:tiny_cfg () in
  check_int "fifteen ablations" 15 (List.length tables);
  List.iter
    (fun (title, table) ->
      check_bool (title ^ " renders") true
        (String.length (Table.to_string table) > 0))
    tables

let () =
  Alcotest.run "ablation"
    [
      ( "individual",
        [
          Alcotest.test_case "waxman alpha" `Quick test_waxman_alpha;
          Alcotest.test_case "eqcast order" `Quick test_eqcast_order;
          Alcotest.test_case "nfusion discount" `Quick test_nfusion_discount;
          Alcotest.test_case "prim start" `Quick test_prim_start;
          Alcotest.test_case "alg2 boost" `Quick test_alg2_boost;
          Alcotest.test_case "fidelity threshold" `Quick
            test_fidelity_threshold;
          Alcotest.test_case "multi-group strategy" `Quick
            test_multi_group_strategy;
        ] );
      ("suite", [ Alcotest.test_case "all" `Slow test_all_runs ]);
    ]
