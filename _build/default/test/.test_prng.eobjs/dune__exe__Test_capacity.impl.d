test/test_capacity.ml: Alcotest Qnet_core Qnet_graph
