test/test_scheduler.ml: Alcotest List Params Qnet_core Qnet_graph Qnet_sim Qnet_topology Qnet_util Verify
