test/test_svg.ml: Alcotest Filename Fun Qnet_graph String Sys
