test/test_local_search.mli:
