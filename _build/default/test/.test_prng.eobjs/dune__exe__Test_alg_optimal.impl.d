test/test_alg_optimal.ml: Alcotest Alg_optimal Channel Ent_tree Exact List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
