test/test_shapes.ml: Alcotest List Qnet_experiments
