test/test_eqcast.ml: Alcotest Alg_optimal Channel Ent_tree List Params Qnet_baselines Qnet_core Qnet_graph Qnet_topology Qnet_util
