test/test_topology.ml: Alcotest Array Assemble Float Generate Grid Layout List Qnet_graph Qnet_topology Qnet_util Spec Volchenkov Watts_strogatz Waxman
