test/test_multi_group.mli:
