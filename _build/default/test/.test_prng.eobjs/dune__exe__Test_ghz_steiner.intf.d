test/test_ghz_steiner.mli:
