test/test_steiner.ml: Alcotest List Qnet_graph
