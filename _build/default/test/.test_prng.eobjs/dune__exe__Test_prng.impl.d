test/test_prng.ml: Alcotest Array Float Int64 List Printf Qnet_util
