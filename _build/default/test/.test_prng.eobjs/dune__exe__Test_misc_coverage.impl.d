test/test_misc_coverage.ml: Alcotest Alg_conflict_free Capacity Ent_tree Fidelity Format List Muerp Multipath Params Qnet_core Qnet_experiments Qnet_graph Qnet_topology Qnet_util String Verify
