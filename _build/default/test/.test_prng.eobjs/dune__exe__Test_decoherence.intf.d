test/test_decoherence.mli:
