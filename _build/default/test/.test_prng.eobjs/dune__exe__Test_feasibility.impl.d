test/test_feasibility.ml: Alcotest Alg_optimal Array Exact Feasibility Format List Params Qnet_core Qnet_graph Qnet_topology Qnet_util
