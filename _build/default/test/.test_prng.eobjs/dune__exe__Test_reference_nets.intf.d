test/test_reference_nets.mli:
