test/test_dot.ml: Alcotest Qnet_graph String
