test/test_params.ml: Alcotest Qnet_core
