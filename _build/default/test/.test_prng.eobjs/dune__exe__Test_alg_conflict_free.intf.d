test/test_alg_conflict_free.mli:
