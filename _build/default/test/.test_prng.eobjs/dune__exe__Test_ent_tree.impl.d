test/test_ent_tree.ml: Alcotest List Qnet_core Qnet_graph
