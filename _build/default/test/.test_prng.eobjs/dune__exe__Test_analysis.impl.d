test/test_analysis.ml: Alcotest Analysis Format Printf Qnet_graph Qnet_topology Qnet_util Spec String Volchenkov Watts_strogatz Waxman
