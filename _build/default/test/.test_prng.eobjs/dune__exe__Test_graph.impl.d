test/test_graph.ml: Alcotest Qnet_graph
