test/test_alg_prim.ml: Alcotest Alg_optimal Alg_prim Ent_tree List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
