test/test_redundancy.ml: Alcotest Alg_conflict_free Channel Ent_tree List Params Qnet_core Qnet_graph Qnet_topology Qnet_util Redundancy
