test/test_ghz_steiner.ml: Alcotest Alg_conflict_free Ent_tree List Params Printf Qnet_baselines Qnet_core Qnet_graph Qnet_topology Qnet_util
