test/test_multipath.mli:
