test/test_alg_conflict_free.ml: Alcotest Alg_conflict_free Alg_optimal Channel Ent_tree List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
