test/test_experiments.ml: Alcotest Float List Qnet_experiments Qnet_topology Qnet_util String
