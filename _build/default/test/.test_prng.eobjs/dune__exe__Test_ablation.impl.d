test/test_ablation.ml: Alcotest List Qnet_experiments Qnet_topology Qnet_util String
