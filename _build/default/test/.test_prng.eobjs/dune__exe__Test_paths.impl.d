test/test_paths.ml: Alcotest Array List Qnet_graph
