test/test_redundancy.mli:
