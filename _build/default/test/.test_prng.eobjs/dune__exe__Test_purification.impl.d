test/test_purification.ml: Alcotest Channel Ent_tree Fidelity Params Purification Qnet_core Qnet_graph
