test/test_eqcast.mli:
