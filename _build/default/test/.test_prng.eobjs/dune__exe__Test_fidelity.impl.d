test/test_fidelity.ml: Alcotest Alg_conflict_free Capacity Channel Ent_tree Fidelity List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util Routing Verify
