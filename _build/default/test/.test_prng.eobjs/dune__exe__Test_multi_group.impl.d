test/test_multi_group.ml: Alcotest Alg_prim Ent_tree Float Hashtbl List Multi_group Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
