test/test_decoherence.ml: Alcotest Channel Ent_tree Float List Params Printf Qnet_core Qnet_graph Qnet_sim Qnet_util
