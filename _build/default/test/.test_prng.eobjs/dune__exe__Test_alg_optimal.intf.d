test/test_alg_optimal.mli:
