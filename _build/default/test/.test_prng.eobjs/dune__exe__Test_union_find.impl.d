test/test_union_find.ml: Alcotest Qnet_graph
