test/test_sexp.ml: Alcotest Filename Fun List QCheck QCheck_alcotest Qnet_core Qnet_graph Qnet_topology Qnet_util String Sys
