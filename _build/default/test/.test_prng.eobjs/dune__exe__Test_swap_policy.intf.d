test/test_swap_policy.mli:
