test/test_multipath.ml: Alcotest Alg_conflict_free Alg_kbest Alg_optimal Capacity Channel Ent_tree Float List Multipath Params Qnet_core Qnet_graph Qnet_topology Qnet_util Routing Verify
