test/test_binary_heap.mli:
