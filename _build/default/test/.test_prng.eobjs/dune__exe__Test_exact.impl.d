test/test_exact.ml: Alcotest Alg_conflict_free Alg_optimal Alg_prim Ent_tree Exact List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
