test/test_mst.ml: Alcotest List Printf Qnet_graph
