test/test_logprob.mli:
