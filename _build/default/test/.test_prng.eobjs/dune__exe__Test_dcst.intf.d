test/test_dcst.mli:
