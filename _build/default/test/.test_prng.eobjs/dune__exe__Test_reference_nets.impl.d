test/test_reference_nets.ml: Alcotest List Qnet_core Qnet_graph Qnet_topology Qnet_util
