test/test_muerp.ml: Alcotest Channel Ent_tree Float List Muerp Params Qnet_core Qnet_graph Qnet_topology Qnet_util Verify
