test/test_nfusion.mli:
