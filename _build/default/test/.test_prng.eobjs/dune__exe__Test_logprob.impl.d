test/test_logprob.ml: Alcotest Float List Printf Qnet_util
