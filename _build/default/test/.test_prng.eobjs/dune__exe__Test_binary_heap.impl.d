test/test_binary_heap.ml: Alcotest Float List QCheck QCheck_alcotest Qnet_graph
