test/test_purification.mli:
