test/test_swap_policy.ml: Alcotest Channel Float List Params Printf Qnet_core Qnet_graph Qnet_util Swap_policy
