test/test_misc_coverage.mli:
