test/test_ent_tree.mli:
