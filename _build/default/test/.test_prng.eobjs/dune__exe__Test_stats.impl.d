test/test_stats.ml: Alcotest Qnet_util
