test/test_nfusion.ml: Alcotest Alg_conflict_free Channel Ent_tree List Params Qnet_baselines Qnet_core Qnet_graph Qnet_topology Qnet_util
