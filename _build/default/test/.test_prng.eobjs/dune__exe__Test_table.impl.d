test/test_table.ml: Alcotest Float Format Qnet_util
