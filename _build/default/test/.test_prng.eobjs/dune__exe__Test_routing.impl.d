test/test_routing.ml: Alcotest Capacity Channel Exact Float List Params Qnet_core Qnet_graph Routing
