test/test_channel.ml: Alcotest Format Qnet_core Qnet_graph String
