test/test_alg_prim.mli:
