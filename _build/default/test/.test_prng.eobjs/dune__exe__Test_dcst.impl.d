test/test_dcst.ml: Alcotest Array Qnet_graph
