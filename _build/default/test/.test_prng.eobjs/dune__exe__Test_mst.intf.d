test/test_mst.mli:
