test/test_muerp.mli:
