(* Unit tests for Qnet_core.Alg_optimal — Algorithm 2 and Theorem 3. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let test_sufficient_condition () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  let s = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:0.5 ~y:0. in
  ignore (Graph.Builder.add_edge b u0 s 500.);
  ignore (Graph.Builder.add_edge b s u1 500.);
  let g = Graph.Builder.freeze b in
  (* 2 users need Q >= 4 per switch: exactly met. *)
  check_bool "Q = 2|U| suffices" true (Alg_optimal.sufficient_condition g);
  let g' = Graph.with_qubits g (fun v -> max 0 (v.Graph.qubits - 1)) in
  check_bool "Q = 3 < 2|U| fails" false (Alg_optimal.sufficient_condition g')

let test_candidates_sorted_descending () =
  let rng = Prng.create 3 in
  let spec = Qnet_topology.Spec.create ~n_users:6 ~n_switches:20 () in
  let g = Qnet_topology.Waxman.generate rng spec in
  let cs = Alg_optimal.candidate_channels g params in
  check_int "all pairs present" 15 (List.length cs);
  let rec sorted = function
    | [] | [ _ ] -> true
    | (a : Channel.t) :: ((b : Channel.t) :: _ as rest) ->
        Channel.rate_prob a >= Channel.rate_prob b && sorted rest
  in
  check_bool "descending rate order" true (sorted cs)

let test_solve_produces_spanning_tree () =
  for seed = 1 to 10 do
    let rng = Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:6 ~n_switches:20
        ~qubits_per_switch:12 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match Alg_optimal.solve g params with
    | None -> Alcotest.fail "connected network must be solvable"
    | Some tree ->
        check_int "|U| - 1 channels" 5 (Ent_tree.channel_count tree);
        check_bool "spans users" true
          (Ent_tree.spans_users tree (Graph.users g))
  done

let test_optimal_vs_exhaustive () =
  (* Theorem 3: under the sufficient condition, Algorithm 2 is optimal.
     Compare against brute force on tiny instances. *)
  for seed = 1 to 8 do
    let rng = Prng.create (100 + seed) in
    let spec =
      Qnet_topology.Spec.create ~n_users:4 ~n_switches:6 ~avg_degree:4.
        ~qubits_per_switch:8 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    check_bool "condition holds" true (Alg_optimal.sufficient_condition g);
    let alg2 = Alg_optimal.solve g params in
    let exact = Exact.solve g params in
    match (alg2, exact) with
    | Some t2, Some te ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "seed %d optimal rate" seed)
          (Ent_tree.rate_neg_log te) (Ent_tree.rate_neg_log t2)
    | None, None -> ()
    | Some _, None -> Alcotest.fail "alg2 found a tree brute force missed"
    | None, Some _ -> Alcotest.fail "alg2 missed a feasible instance"
  done

let test_single_user () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  match Alg_optimal.solve g params with
  | Some tree -> check_int "empty tree" 0 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "single user is trivially entangled"

let test_disconnected_users_infeasible () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  let u2 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 u1 1.);
  ignore u2;
  let g = Graph.Builder.freeze b in
  check_bool "isolated user makes it infeasible" true
    (Alg_optimal.solve g params = None)

let test_ignores_cumulative_capacity () =
  (* A 4-qubit hub shared by three users: Algorithm 2 happily routes
     three channels through it (6 qubits' worth) because it only uses
     Algorithm 1's static >= 2 filter — exactly the behaviour Algorithm
     3 exists to repair. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  match Alg_optimal.solve g params with
  | None -> Alcotest.fail "alg2 should return the (overcommitted) star"
  | Some tree ->
      check_int "two channels" 2 (Ent_tree.channel_count tree);
      let usage = List.assoc hub (Ent_tree.qubit_usage tree) in
      check_bool "hub possibly over its budget" true (usage = 4)

let () =
  Alcotest.run "alg_optimal"
    [
      ( "condition",
        [ Alcotest.test_case "sufficient" `Quick test_sufficient_condition ] );
      ( "solve",
        [
          Alcotest.test_case "candidates sorted" `Quick
            test_candidates_sorted_descending;
          Alcotest.test_case "spanning tree" `Quick
            test_solve_produces_spanning_tree;
          Alcotest.test_case "optimal (Theorem 3)" `Quick
            test_optimal_vs_exhaustive;
          Alcotest.test_case "single user" `Quick test_single_user;
          Alcotest.test_case "disconnected" `Quick
            test_disconnected_users_infeasible;
          Alcotest.test_case "capacity-oblivious" `Quick
            test_ignores_cumulative_capacity;
        ] );
    ]
