(* Coverage tests for printers, aggregates and smaller behaviours not
   exercised elsewhere. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let params = Params.default

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  scan 0

let network seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:5 ~n_switches:15 ~qubits_per_switch:4 ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_graph_pp () =
  let g = network 1 in
  let s = Format.asprintf "%a" Graph.pp g in
  check_bool "mentions users" true (contains s "5 users");
  check_bool "mentions switches" true (contains s "15 switches")

let test_ent_tree_pp () =
  let g = network 1 in
  match Alg_conflict_free.solve g params with
  | None -> ()
  | Some tree ->
      let s = Format.asprintf "%a" Ent_tree.pp tree in
      check_bool "mentions channels" true (contains s "channels")

let test_verify_violation_printers () =
  let g = network 2 in
  let u0, u1 =
    match Graph.users g with a :: b :: _ -> (a, b) | _ -> assert false
  in
  ignore (u0, u1);
  let render v = Format.asprintf "%a" Verify.pp_violation v in
  check_bool "not a tree" true
    (contains (render Verify.Not_a_spanning_tree) "spanning tree");
  check_bool "capacity" true
    (contains (render (Verify.Capacity_exceeded (3, 6, 4))) "switch 3");
  check_bool "rate mismatch" true
    (contains (render (Verify.Rate_mismatch (1., 2.))) "rate mismatch")

let test_outcome_capacity_flag_for_alg2 () =
  (* The overcommitted star: Alg-2 returns it; the flag must say so. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  let inst = Muerp.instance ~params g in
  let o = Muerp.solve Muerp.Optimal inst in
  check_bool "alg2 found a tree" true (o.Muerp.tree <> None);
  check_bool "flagged as over capacity" false (Muerp.outcome_capacity_ok inst o)

let test_runner_feasible_rate_aggregate () =
  let cfg =
    Qnet_experiments.Config.create
      ~spec:(Qnet_topology.Spec.create ~n_users:4 ~n_switches:12 ())
      ~replications:3 ()
  in
  let aggregates = Qnet_experiments.Runner.run_config cfg in
  List.iter
    (fun (a : Qnet_experiments.Runner.aggregate) ->
      match a.Qnet_experiments.Runner.mean_feasible_rate with
      | None ->
          Alcotest.(check int)
            "no feasible runs means count 0" 0
            a.Qnet_experiments.Runner.feasible
      | Some r ->
          check_bool "feasible mean >= overall mean" true
            (r >= a.Qnet_experiments.Runner.mean_rate -. 1e-15))
    aggregates

let test_headline_na_rendering () =
  (* A series where a baseline is always zero yields an n/a headline. *)
  let series =
    {
      Qnet_experiments.Figures.id = "synthetic";
      title = "synthetic";
      x_header = "x";
      x_values = [ "a" ];
      rows =
        Qnet_experiments.Runner.
          [
            (Alg2, [ 0.5 ]); (Alg3, [ 0.4 ]); (Alg4, [ 0.3 ]);
            (N_fusion, [ 0. ]); (E_q_cast, [ 0. ]);
          ];
    }
  in
  let table =
    Qnet_experiments.Report.headlines_table
      (Qnet_experiments.Figures.headlines [ series ])
  in
  check_bool "renders n/a" true
    (contains (Qnet_util.Table.to_string table) "n/a")

let test_capacity_overcommitted_accessor () =
  let g = network 3 in
  let c = Capacity.of_graph g in
  Alcotest.(check (list int)) "fresh state clean" [] (Capacity.overcommitted c)

let test_log_levels_are_silent_by_default () =
  (* Without setup, debug logging must not raise or print to stdout. *)
  Qnet_util.Log.debug "invisible %d" 42;
  Qnet_util.Log.info "invisible";
  Qnet_util.Log.warn "invisible";
  check_bool "no crash" true true

let test_fidelity_prim_start_validation () =
  let g = network 4 in
  let s = List.hd (Graph.switches g) in
  Alcotest.check_raises "non-user start"
    (Invalid_argument "Fidelity.solve_prim: start is not a user") (fun () ->
      ignore
        (Fidelity.solve_prim ~start:s g params
           { Fidelity.f0 = 0.98; threshold = 0.9 }))

let test_multipath_direct_only_pair () =
  (* Two users joined only by a direct fiber: exactly one candidate. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1000. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  let g = Graph.Builder.freeze b in
  let capacity = Capacity.of_graph g in
  Alcotest.(check int)
    "single candidate" 1
    (List.length
       (Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:4))

let () =
  Alcotest.run "misc_coverage"
    [
      ( "printers",
        [
          Alcotest.test_case "graph pp" `Quick test_graph_pp;
          Alcotest.test_case "tree pp" `Quick test_ent_tree_pp;
          Alcotest.test_case "violations" `Quick test_verify_violation_printers;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "capacity flag" `Quick
            test_outcome_capacity_flag_for_alg2;
          Alcotest.test_case "feasible rate" `Quick
            test_runner_feasible_rate_aggregate;
          Alcotest.test_case "headline n/a" `Quick test_headline_na_rendering;
          Alcotest.test_case "overcommitted accessor" `Quick
            test_capacity_overcommitted_accessor;
        ] );
      ( "misc",
        [
          Alcotest.test_case "silent logging" `Quick
            test_log_levels_are_silent_by_default;
          Alcotest.test_case "fidelity start" `Quick
            test_fidelity_prim_start_validation;
          Alcotest.test_case "multipath direct" `Quick
            test_multipath_direct_only_pair;
        ] );
    ]
