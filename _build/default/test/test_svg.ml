(* Unit tests for Qnet_graph.Svg. *)

module Graph = Qnet_graph.Graph
module Svg = Qnet_graph.Svg

let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
  in
  scan 0

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let fixture () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:500.
  in
  let s2 =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:1000. ~y:900.
  in
  ignore (Graph.Builder.add_edge b u0 s2 1345.);
  ignore (Graph.Builder.add_edge b s2 u1 1077.);
  (Graph.Builder.freeze b, u0, u1, s2)

let test_document_structure () =
  let g, _, _, _ = fixture () in
  let svg = Svg.render g in
  check_bool "opens svg" true (contains svg "<svg xmlns=");
  check_bool "closes svg" true (contains svg "</svg>");
  check_bool "two user circles" true (count_occurrences svg "<circle" = 2);
  check_bool "one switch rect (plus background)" true
    (count_occurrences svg "<rect" = 2);
  check_bool "two fibers" true (count_occurrences svg "stroke=\"#cccccc\"" = 2);
  check_bool "user labels" true (contains svg ">u0<" && contains svg ">u1<")

let test_title () =
  let g, _, _, _ = fixture () in
  check_bool "title rendered" true
    (contains (Svg.render ~title:"my net" g) "my net")

let test_highlight () =
  let g, u0, u1, s2 = fixture () in
  let svg = Svg.render ~highlight_paths:[ [ u0; s2; u1 ] ] g in
  check_bool "overlay color present" true (contains svg "#d62728");
  check_bool "two overlay segments" true
    (count_occurrences svg "stroke-width=\"3\"" = 2);
  (* A path with a missing fiber renders nothing extra. *)
  let svg2 = Svg.render ~highlight_paths:[ [ u0; u1 ] ] g in
  check_bool "missing segment skipped" true
    (count_occurrences svg2 "stroke-width=\"3\"" = 0)

let test_save () =
  let g, _, _, _ = fixture () in
  let path = Filename.temp_file "qnet" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg.save path g;
      let ic = open_in path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_bool "file holds the document" true (contains content "</svg>"))

let test_width_scaling () =
  let g, _, _, _ = fixture () in
  check_bool "custom width" true
    (contains (Svg.render ~width:400 g) "width=\"400\"")

let () =
  Alcotest.run "svg"
    [
      ( "render",
        [
          Alcotest.test_case "structure" `Quick test_document_structure;
          Alcotest.test_case "title" `Quick test_title;
          Alcotest.test_case "highlight" `Quick test_highlight;
          Alcotest.test_case "save" `Quick test_save;
          Alcotest.test_case "width" `Quick test_width_scaling;
        ] );
    ]
