(* Unit tests for Qnet_baselines.Eqcast. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Eqcast = Qnet_baselines.Eqcast
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let network seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:6 ~n_switches:20 ~qubits_per_switch:4 ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_chains_consecutive_users () =
  let g = network 1 in
  match Eqcast.solve g params with
  | None -> ()
  | Some tree ->
      let users = Graph.users g in
      check_int "|U|-1 channels" (List.length users - 1)
        (Ent_tree.channel_count tree);
      (* Channel i connects user i and user i+1 in id order. *)
      let sorted = users in
      List.iteri
        (fun i (c : Channel.t) ->
          ignore i;
          let consecutive =
            let rec scan = function
              | a :: (b :: _ as rest) ->
                  Channel.connects c a b || scan rest
              | _ -> false
            in
            scan sorted
          in
          check_bool "chains consecutive pair" true consecutive)
        tree.Ent_tree.channels

let test_valid_and_capacity_respecting () =
  for seed = 1 to 10 do
    let g = network seed in
    match Eqcast.solve g params with
    | None -> ()
    | Some tree ->
        check_bool "spans users" true
          (Ent_tree.spans_users tree (Graph.users g));
        List.iter
          (fun (s, used) ->
            check_bool "capacity" true (used <= Graph.qubits g s))
          (Ent_tree.qubit_usage tree)
  done

let test_never_beats_alg2 () =
  for seed = 1 to 10 do
    let g = network (20 + seed) in
    match (Alg_optimal.solve g params, Eqcast.solve g params) with
    | Some t2, Some tb ->
        check_bool "baseline below optimal" true
          (Ent_tree.rate_neg_log tb >= Ent_tree.rate_neg_log t2 -. 1e-9)
    | _ -> ()
  done

let test_fails_when_chain_breaks () =
  (* Users 0,1,2 where 1-2 can only be joined through a 0-qubit desert:
     the id-order chain <0,1>,<1,2> breaks at <1,2>. *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let u0 = user 0. in
  let u1 = user 1000. in
  let u2 = user 9000. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  ignore u2;
  let g = Graph.Builder.freeze b in
  check_bool "broken chain infeasible" true (Eqcast.solve g params = None)

let test_nearest_neighbor_order () =
  let g = network 3 in
  match Eqcast.solve ~order:Eqcast.Nearest_neighbor g params with
  | None -> ()
  | Some tree ->
      check_bool "still spans" true (Ent_tree.spans_users tree (Graph.users g))

let test_nearest_neighbor_at_least_as_good_on_line () =
  (* Users placed on a line but with shuffled ids: id-order chaining
     criss-crosses (longer fibers), nearest-neighbor recovers the
     geographic order. *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  (* id 0 at x=0, id 1 at x=4000, id 2 at x=2000: id order hops
     0->4000->2000; geographic order is 0,2000,4000. *)
  let u0 = user 0. in
  let u1 = user 4000. in
  let u2 = user 2000. in
  ignore (Graph.Builder.add_edge b u0 u2 2000.);
  ignore (Graph.Builder.add_edge b u2 u1 2000.);
  ignore (Graph.Builder.add_edge b u0 u1 4000.);
  let g = Graph.Builder.freeze b in
  match
    (Eqcast.solve ~order:Eqcast.By_id g params,
     Eqcast.solve ~order:Eqcast.Nearest_neighbor g params)
  with
  | Some by_id, Some nn ->
      check_bool "nn at least as good" true
        (Ent_tree.rate_neg_log nn <= Ent_tree.rate_neg_log by_id +. 1e-9)
  | _ -> Alcotest.fail "both orders should route"

let test_single_and_pair () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let g1 = Graph.Builder.freeze b in
  ignore u0;
  (match Eqcast.solve g1 params with
  | Some tree -> check_int "single user empty tree" 0 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "trivial");
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let c = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (Graph.Builder.add_edge b a c 1000.);
  let g2 = Graph.Builder.freeze b in
  match Eqcast.solve g2 params with
  | Some tree -> check_int "pair is one channel" 1 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "pair should route"

let () =
  Alcotest.run "eqcast"
    [
      ( "behaviour",
        [
          Alcotest.test_case "chains consecutive" `Quick
            test_chains_consecutive_users;
          Alcotest.test_case "valid trees" `Quick
            test_valid_and_capacity_respecting;
          Alcotest.test_case "below optimal" `Quick test_never_beats_alg2;
          Alcotest.test_case "broken chain" `Quick test_fails_when_chain_breaks;
          Alcotest.test_case "degenerate sizes" `Quick test_single_and_pair;
        ] );
      ( "orders",
        [
          Alcotest.test_case "nearest neighbor" `Quick
            test_nearest_neighbor_order;
          Alcotest.test_case "nn on a line" `Quick
            test_nearest_neighbor_at_least_as_good_on_line;
        ] );
    ]
