(* Unit tests for Qnet_core.Swap_policy — swapping-tree build times. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let feq = Alcotest.(check (float 1e-9))

(* A straight channel of [n] 3000-unit links. *)
let chain n =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0. in
  let u0 = user 0. in
  let relays =
    List.init (n - 1) (fun i -> switch (3000. *. float_of_int (i + 1)))
  in
  let u1 = user (3000. *. float_of_int n) in
  let path = (u0 :: relays) @ [ u1 ] in
  let rec wire = function
    | a :: (b' :: _ as rest) ->
        ignore (Graph.Builder.add_edge b a b' 3000.);
        wire rest
    | _ -> ()
  in
  wire path;
  let g = Graph.Builder.freeze b in
  let params = Params.create ~alpha:2e-4 ~q:0.9 () in
  (g, params, Channel.make_exn g params path)

let test_tree_constructors () =
  Alcotest.(check (list int)) "balanced leaves" [ 0; 1; 2; 3 ]
    (Swap_policy.leaves (Swap_policy.balanced 4));
  Alcotest.(check (list int)) "linear leaves" [ 0; 1; 2 ]
    (Swap_policy.leaves (Swap_policy.linear 3));
  check_bool "single link" true (Swap_policy.balanced 1 = Swap_policy.Leaf 0);
  Alcotest.check_raises "zero links"
    (Invalid_argument "Swap_policy.balanced: links < 1") (fun () ->
      ignore (Swap_policy.balanced 0))

let test_validate () =
  check_bool "balanced valid" true
    (Swap_policy.validate (Swap_policy.balanced 5) ~links:5 = Ok ());
  check_bool "wrong arity" true
    (match Swap_policy.validate (Swap_policy.balanced 5) ~links:4 with
    | Error _ -> true
    | Ok () -> false);
  (* Out-of-order leaves are rejected. *)
  let bad = Swap_policy.(Node (Leaf 1, Leaf 0)) in
  check_bool "out of order" true
    (match Swap_policy.validate bad ~links:2 with
    | Error _ -> true
    | Ok () -> false)

let test_single_link_exact () =
  let g, params, c = chain 1 in
  let p = Channel.rate_prob c in
  feq "1/p for one link" (1. /. p)
    (Swap_policy.expected_slots_estimate g params c (Swap_policy.balanced 1))

let test_estimate_vs_simulation () =
  let g, params, c = chain 4 in
  List.iter
    (fun (name, tree) ->
      let est = Swap_policy.expected_slots_estimate g params c tree in
      match
        Swap_policy.simulate_slots (Prng.create 3) g params c tree ~runs:4_000
          ~max_slots:1_000_000
      with
      | None -> Alcotest.fail "simulation should complete"
      | Some sim ->
          check_bool
            (Printf.sprintf "%s: estimate %.1f vs simulated %.1f" name est sim)
            true
            (Float.abs (est -. sim) < 0.35 *. sim))
    [
      ("balanced", Swap_policy.balanced 4); ("linear", Swap_policy.linear 4);
    ]

let test_balanced_beats_linear_on_long_chains () =
  let g, params, c = chain 8 in
  let est tree = Swap_policy.expected_slots_estimate g params c tree in
  check_bool "balanced no slower" true
    (est (Swap_policy.balanced 8) <= est (Swap_policy.linear 8) +. 1e-9)

let test_memory_beats_synchronous () =
  (* Even the linear policy with memories beats the synchronous
     all-at-once expectation 1/rate for a 4-link channel. *)
  let g, params, c = chain 4 in
  let synchronous = 1. /. Channel.rate_prob c in
  let linear =
    Swap_policy.expected_slots_estimate g params c (Swap_policy.linear 4)
  in
  check_bool "memories help" true (linear < synchronous)

let test_q_zero_never_completes () =
  let g, _, c = chain 3 in
  let dead = Params.create ~alpha:2e-4 ~q:0. () in
  check_bool "estimate infinite" true
    (Swap_policy.expected_slots_estimate g dead c (Swap_policy.balanced 3)
    = infinity);
  check_bool "simulation times out" true
    (Swap_policy.simulate_slots (Prng.create 1) g dead c
       (Swap_policy.balanced 3) ~runs:2 ~max_slots:100
    = None)

let test_arity_mismatch_rejected () =
  let g, params, c = chain 3 in
  Alcotest.check_raises "wrong tree"
    (Invalid_argument "Swap_policy: tree leaves must be links 0..l-1 in order")
    (fun () ->
      ignore
        (Swap_policy.expected_slots_estimate g params c
           (Swap_policy.balanced 4)))

let () =
  Alcotest.run "swap_policy"
    [
      ( "trees",
        [
          Alcotest.test_case "constructors" `Quick test_tree_constructors;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "expectations",
        [
          Alcotest.test_case "single link" `Quick test_single_link_exact;
          Alcotest.test_case "estimate vs simulation" `Slow
            test_estimate_vs_simulation;
          Alcotest.test_case "balanced vs linear" `Quick
            test_balanced_beats_linear_on_long_chains;
          Alcotest.test_case "memories help" `Quick
            test_memory_beats_synchronous;
          Alcotest.test_case "q = 0" `Quick test_q_zero_never_completes;
          Alcotest.test_case "arity" `Quick test_arity_mismatch_rejected;
        ] );
    ]
