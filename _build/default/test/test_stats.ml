(* Unit tests for Qnet_util.Stats. *)

module Stats = Qnet_util.Stats

let feq = Alcotest.(check (float 1e-9))
let feq_loose = Alcotest.(check (float 1e-6))

let test_mean () =
  feq "mean of constants" 3. (Stats.mean [| 3.; 3.; 3. |]);
  feq "mean simple" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "singleton" 7. (Stats.mean [| 7. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  feq "variance of constants" 0. (Stats.variance [| 5.; 5.; 5. |]);
  (* Sample variance of 1..4 around 2.5: (2.25+0.25+0.25+2.25)/3 *)
  feq "variance simple" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  feq "singleton variance" 0. (Stats.variance [| 9. |])

let test_stddev () =
  feq "stddev" (sqrt (5. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 4. |])

let test_geometric_mean () =
  feq "geomean powers of two" 4. (Stats.geometric_mean [| 2.; 8. |]);
  feq "geomean with zero" 0. (Stats.geometric_mean [| 0.; 8. |]);
  feq "geomean singleton" 5. (Stats.geometric_mean [| 5. |]);
  Alcotest.check_raises "negative element"
    (Invalid_argument "Stats.geometric_mean: negative element") (fun () ->
      ignore (Stats.geometric_mean [| 1.; -1. |]))

let test_median () =
  feq "odd length" 3. (Stats.median [| 5.; 1.; 3. |]);
  feq "even length" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "singleton" 9. (Stats.median [| 9. |])

let test_median_does_not_mutate () =
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats.median a);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] a

let test_percentile () =
  let a = [| 10.; 20.; 30.; 40.; 50. |] in
  feq "p0 is min" 10. (Stats.percentile a 0.);
  feq "p100 is max" 50. (Stats.percentile a 100.);
  feq "p50 is median" 30. (Stats.percentile a 50.);
  feq "p25 interpolates" 20. (Stats.percentile a 25.);
  feq "p10 interpolates" 14. (Stats.percentile a 10.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile a 101.))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  feq "min" (-1.) lo;
  feq "max" 7. hi

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  feq "mean" 3. s.Stats.mean;
  feq "median" 3. s.Stats.median;
  feq "min" 1. s.Stats.min;
  feq "max" 5. s.Stats.max;
  feq "stddev" (sqrt 2.5) s.Stats.stddev

let test_mean_ci95 () =
  let lo, hi = Stats.mean_ci95 [| 4. |] in
  feq "singleton degenerates" 4. lo;
  feq "singleton degenerates hi" 4. hi;
  let lo, hi = Stats.mean_ci95 [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check bool) "contains mean" true (lo < 3. && 3. < hi);
  feq_loose "symmetric" (3. -. lo) (hi -. 3.)

let test_wilson () =
  let lo, hi = Stats.wilson_ci95 ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  let lo, _ = Stats.wilson_ci95 ~successes:0 ~trials:100 in
  feq "zero successes clamps at 0" 0. lo;
  let _, hi = Stats.wilson_ci95 ~successes:100 ~trials:100 in
  feq "all successes clamps at 1" 1. hi;
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Stats.wilson_ci95: trials must be positive") (fun () ->
      ignore (Stats.wilson_ci95 ~successes:0 ~trials:0));
  Alcotest.check_raises "inconsistent"
    (Invalid_argument "Stats.wilson_ci95: inconsistent counts") (fun () ->
      ignore (Stats.wilson_ci95 ~successes:5 ~trials:3))

let test_wilson_narrows () =
  let lo1, hi1 = Stats.wilson_ci95 ~successes:30 ~trials:100 in
  let lo2, hi2 = Stats.wilson_ci95 ~successes:3000 ~trials:10000 in
  Alcotest.(check bool) "more trials narrow the interval" true
    (hi2 -. lo2 < hi1 -. lo1)

let () =
  Alcotest.run "stats"
    [
      ( "central",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        ] );
      ( "order",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "median purity" `Quick test_median_does_not_mutate;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "mean ci95" `Quick test_mean_ci95;
          Alcotest.test_case "wilson" `Quick test_wilson;
          Alcotest.test_case "wilson narrows" `Quick test_wilson_narrows;
        ] );
    ]
