(* Shape-regression tests: the paper's §V-B qualitative claims, encoded
   as executable assertions over the real experiment drivers (at a
   reduced replication count to stay fast — 5 networks per point). *)

module Config = Qnet_experiments.Config
module Figures = Qnet_experiments.Figures
module Runner = Qnet_experiments.Runner

let check_bool = Alcotest.(check bool)
let cfg = Config.create ~replications:5 ()
let row (s : Figures.series) m = List.assoc m s.Figures.rows

let weakly_monotone ~dir xs =
  let rec go = function
    | a :: (b :: _ as rest) ->
        (match dir with
        | `Down -> b <= a *. 1.10 +. 1e-12 (* 10% noise allowance *)
        | `Up -> b >= a *. 0.90 -. 1e-12)
        && go rest
    | _ -> true
  in
  go xs

let dominated_by alg base = List.for_all2 (fun a b -> a >= b -. 1e-15) alg base

let test_fig5_ordering () =
  let s = Figures.fig5 ~cfg () in
  (* Proposed algorithms beat both baselines on every topology. *)
  List.iter
    (fun alg ->
      check_bool "alg >= n-fusion" true
        (dominated_by (row s alg) (row s Runner.N_fusion));
      check_bool "alg >= e-q-cast" true
        (dominated_by (row s alg) (row s Runner.E_q_cast)))
    Runner.[ Alg2; Alg3; Alg4 ];
  (* Alg-2 upper-bounds the other two throughout. *)
  check_bool "alg2 tops alg3" true
    (dominated_by (row s Runner.Alg2) (row s Runner.Alg3));
  check_bool "alg2 tops alg4" true
    (dominated_by (row s Runner.Alg2) (row s Runner.Alg4))

let test_fig6a_rate_falls_with_users () =
  let s = Figures.fig6a ~cfg ~user_counts:[ 4; 8; 12 ] () in
  List.iter
    (fun m ->
      check_bool
        (Runner.method_name m ^ " falls with users")
        true
        (weakly_monotone ~dir:`Down (row s m)))
    Runner.all_methods

let test_fig7a_rate_rises_with_degree () =
  let s = Figures.fig7a ~cfg ~degrees:[ 4.; 6.; 10. ] () in
  List.iter
    (fun m ->
      check_bool
        (Runner.method_name m ^ " rises with degree")
        true
        (weakly_monotone ~dir:`Up (row s m)))
    Runner.all_methods

let test_fig8a_saturation () =
  let s = Figures.fig8a ~cfg ~qubit_counts:[ 2; 6 ] () in
  (* Alg-2 runs on boosted switches: flat across the sweep. *)
  (match row s Runner.Alg2 with
  | [ a; b ] -> Alcotest.(check (float 1e-12)) "alg2 flat" a b
  | _ -> Alcotest.fail "two points");
  (* Heuristics reach Alg-2's level by Q = 6. *)
  List.iter
    (fun m ->
      match (row s m, row s Runner.Alg2) with
      | [ _; at6 ], [ _; alg2 ] ->
          check_bool
            (Runner.method_name m ^ " saturates by Q=6")
            true
            (at6 >= alg2 *. 0.99)
      | _ -> Alcotest.fail "two points")
    Runner.[ Alg3; Alg4 ]

let test_fig8b_rate_rises_with_q () =
  let s = Figures.fig8b ~cfg ~swap_rates:[ 0.7; 0.9; 1.0 ] () in
  List.iter
    (fun m ->
      check_bool
        (Runner.method_name m ^ " rises with q")
        true
        (weakly_monotone ~dir:`Up (row s m)))
    Runner.all_methods

let test_fig7b_eventual_infeasibility () =
  let s = Figures.fig7b ~cfg ~edges_per_step:60 ~steps:10 () in
  (* By 540/600 edges removed everything must be dead or nearly so. *)
  List.iter
    (fun m ->
      let rates = row s m in
      let last = List.nth rates (List.length rates - 1) in
      check_bool
        (Runner.method_name m ^ " collapses at heavy removal")
        true (last < 1e-3))
    Runner.all_methods

let test_headline_magnitudes () =
  (* At the paper's default configuration the improvement over each
     baseline is at least an order of magnitude. *)
  let s = Figures.fig5 ~cfg () in
  let at_waxman m = List.hd (row s m) in
  check_bool "alg3 >= 10x n-fusion" true
    (at_waxman Runner.Alg3 >= 10. *. at_waxman Runner.N_fusion);
  check_bool "alg3 >= 10x e-q-cast" true
    (at_waxman Runner.Alg3 >= 10. *. at_waxman Runner.E_q_cast)

let () =
  Alcotest.run "shapes"
    [
      ( "paper claims",
        [
          Alcotest.test_case "fig5 ordering" `Slow test_fig5_ordering;
          Alcotest.test_case "fig6a users" `Slow test_fig6a_rate_falls_with_users;
          Alcotest.test_case "fig7a degree" `Slow test_fig7a_rate_rises_with_degree;
          Alcotest.test_case "fig7b collapse" `Slow
            test_fig7b_eventual_infeasibility;
          Alcotest.test_case "fig8a saturation" `Slow test_fig8a_saturation;
          Alcotest.test_case "fig8b swap rate" `Slow test_fig8b_rate_rises_with_q;
          Alcotest.test_case "headline magnitudes" `Slow
            test_headline_magnitudes;
        ] );
    ]
