(* Unit tests for Qnet_topology.Reference_nets. *)

module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Prng = Qnet_util.Prng
module Ref_nets = Qnet_topology.Reference_nets

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build ?(n_users = 4) ?(seed = 1) name =
  Ref_nets.build (Prng.create seed) name ~n_users ~qubits_per_switch:4
    ~user_qubits:1_000

let test_nsfnet_shape () =
  let g = build Ref_nets.Nsfnet in
  check_int "14 nodes" 14 (Graph.vertex_count g);
  check_int "21 links" 21 (Graph.edge_count g);
  check_int "4 users" 4 (Graph.user_count g);
  check_bool "connected" true (Paths.is_connected g)

let test_arpanet_shape () =
  let g = build Ref_nets.Arpanet in
  check_int "20 nodes" 20 (Graph.vertex_count g);
  check_int "32 links" 32 (Graph.edge_count g);
  check_bool "connected" true (Paths.is_connected g)

let test_node_count () =
  check_int "nsfnet" 14 (Ref_nets.node_count Ref_nets.Nsfnet);
  check_int "arpanet" 20 (Ref_nets.node_count Ref_nets.Arpanet)

let test_lengths_match_geometry () =
  let g = build Ref_nets.Nsfnet in
  Graph.iter_edges g (fun e ->
      let va = Graph.vertex g e.Graph.a and vb = Graph.vertex g e.Graph.b in
      Alcotest.(check (float 1e-6))
        "fiber length = euclidean distance" (Graph.euclidean va vb)
        e.Graph.length)

let test_user_choice_seeded () =
  let users seed = Graph.users (build ~seed Ref_nets.Nsfnet) in
  Alcotest.(check (list int)) "same seed, same users" (users 7) (users 7);
  check_bool "different seeds usually differ" true (users 1 <> users 2)

let test_validation () =
  Alcotest.check_raises "too many users"
    (Invalid_argument "Reference_nets.build: more users than nodes")
    (fun () -> ignore (build ~n_users:15 Ref_nets.Nsfnet));
  Alcotest.check_raises "zero users"
    (Invalid_argument "Reference_nets.build: n_users < 1") (fun () ->
      ignore (build ~n_users:0 Ref_nets.Nsfnet))

let test_routable () =
  (* The MUERP pipeline must work end-to-end on both reference nets. *)
  List.iter
    (fun (_, name) ->
      let g = build ~n_users:4 name in
      let inst = Qnet_core.Muerp.instance g in
      let o = Qnet_core.Muerp.solve Qnet_core.Muerp.Conflict_free inst in
      check_bool "solvable with 4 users" true (o.Qnet_core.Muerp.tree <> None))
    Ref_nets.all

let () =
  Alcotest.run "reference_nets"
    [
      ( "topologies",
        [
          Alcotest.test_case "nsfnet" `Quick test_nsfnet_shape;
          Alcotest.test_case "arpanet" `Quick test_arpanet_shape;
          Alcotest.test_case "node counts" `Quick test_node_count;
          Alcotest.test_case "geometry" `Quick test_lengths_match_geometry;
        ] );
      ( "instantiation",
        [
          Alcotest.test_case "seeded users" `Quick test_user_choice_seeded;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "routable" `Quick test_routable;
        ] );
    ]
