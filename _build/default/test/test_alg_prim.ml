(* Unit tests for Qnet_core.Alg_prim — Algorithm 4. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let random_network ?(qubits = 4) ?(users = 6) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:20
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_produces_valid_trees () =
  for seed = 1 to 15 do
    let g = random_network seed in
    match Alg_prim.solve g params with
    | None -> ()
    | Some tree ->
        check_bool "spans users" true
          (Ent_tree.spans_users tree (Graph.users g));
        List.iter
          (fun (s, used) ->
            check_bool "capacity" true (used <= Graph.qubits g s))
          (Ent_tree.qubit_usage tree)
  done

let test_start_parameter () =
  let g = random_network 7 in
  List.iter
    (fun start ->
      match Alg_prim.solve ~start g params with
      | None -> ()
      | Some tree ->
          check_bool
            (Printf.sprintf "start %d spans" start)
            true
            (Ent_tree.spans_users tree (Graph.users g)))
    (Graph.users g)

let test_start_must_be_user () =
  let g = random_network 7 in
  let switch = List.hd (Graph.switches g) in
  Alcotest.check_raises "switch start"
    (Invalid_argument "Alg_prim.solve: start is not a user") (fun () ->
      ignore (Alg_prim.solve ~start:switch g params))

let test_deterministic_given_start () =
  let g = random_network 9 in
  let start = List.hd (Graph.users g) in
  match (Alg_prim.solve ~start g params, Alg_prim.solve ~start g params) with
  | Some t1, Some t2 ->
      Alcotest.(check (float 0.))
        "same tree rate"
        (Ent_tree.rate_neg_log t1) (Ent_tree.rate_neg_log t2)
  | None, None -> ()
  | _ -> Alcotest.fail "nondeterministic feasibility"

let test_rng_start_is_reproducible () =
  let g = random_network 11 in
  let solve () = Alg_prim.solve ~rng:(Prng.create 5) g params in
  match (solve (), solve ()) with
  | Some t1, Some t2 ->
      Alcotest.(check (float 0.))
        "same rng, same answer"
        (Ent_tree.rate_neg_log t1) (Ent_tree.rate_neg_log t2)
  | None, None -> ()
  | _ -> Alcotest.fail "nondeterministic with fixed rng"

let test_never_beats_alg2 () =
  for seed = 1 to 15 do
    let g = random_network ~qubits:2 ~users:8 (100 + seed) in
    match (Alg_optimal.solve g params, Alg_prim.solve g params) with
    | Some t2, Some t4 ->
        check_bool "alg4 <= alg2" true
          (Ent_tree.rate_neg_log t4 >= Ent_tree.rate_neg_log t2 -. 1e-9)
    | _ -> ()
  done

let test_matches_alg2_under_ample_capacity () =
  (* With distinct channel rates and no capacity pressure, greedy
     maximum-spanning-tree growth (Prim) and greedy selection (Kruskal,
     i.e. Algorithm 2) both produce the unique maximum spanning tree. *)
  for seed = 1 to 10 do
    let g = random_network ~qubits:40 (200 + seed) in
    match (Alg_optimal.solve g params, Alg_prim.solve g params) with
    | Some t2, Some t4 ->
        Alcotest.(check (float 1e-9))
          "same rate under ample capacity"
          (Ent_tree.rate_neg_log t2) (Ent_tree.rate_neg_log t4)
    | _ -> Alcotest.fail "both should solve"
  done

let test_infeasible_hub () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  check_bool "2-qubit hub cannot serve 3 users" true
    (Alg_prim.solve g params = None)

let test_single_user () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  match Alg_prim.solve g params with
  | Some tree -> check_int "empty tree" 0 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "trivial"

let () =
  Alcotest.run "alg_prim"
    [
      ( "correctness",
        [
          Alcotest.test_case "valid trees" `Quick test_produces_valid_trees;
          Alcotest.test_case "infeasible hub" `Quick test_infeasible_hub;
          Alcotest.test_case "single user" `Quick test_single_user;
        ] );
      ( "start selection",
        [
          Alcotest.test_case "start parameter" `Quick test_start_parameter;
          Alcotest.test_case "start must be user" `Quick test_start_must_be_user;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_given_start;
          Alcotest.test_case "rng reproducible" `Quick
            test_rng_start_is_reproducible;
        ] );
      ( "relation to alg2",
        [
          Alcotest.test_case "never beats alg2" `Quick test_never_beats_alg2;
          Alcotest.test_case "matches under ample capacity" `Quick
            test_matches_alg2_under_ample_capacity;
        ] );
    ]
