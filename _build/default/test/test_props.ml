(* Property-based tests (QCheck) over randomly generated networks: the
   cross-cutting invariants of the whole library. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let params = Params.default

(* Arbitrary: a connected random quantum network described by a seed and
   small size knobs, so shrinking stays meaningful. *)
type net_case = {
  seed : int;
  users : int;
  switches : int;
  qubits : int;
  gen : int;  (* 0 = waxman, 1 = watts-strogatz, 2 = volchenkov *)
}

let net_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* users = int_range 2 8 in
    let* switches = int_range 4 24 in
    let* qubits = int_range 2 10 in
    let* gen = int_range 0 2 in
    return { seed; users; switches; qubits; gen })

let net_print c =
  Printf.sprintf "{seed=%d; users=%d; switches=%d; qubits=%d; gen=%d}" c.seed
    c.users c.switches c.qubits c.gen

let net_arb = QCheck.make ~print:net_print net_gen

let build c =
  let spec =
    Qnet_topology.Spec.create ~n_users:c.users ~n_switches:c.switches
      ~qubits_per_switch:c.qubits ()
  in
  let kind =
    match c.gen with
    | 0 -> Qnet_topology.Generate.waxman
    | 1 -> Qnet_topology.Generate.watts_strogatz
    | _ -> Qnet_topology.Generate.volchenkov
  in
  Qnet_topology.Generate.run kind (Prng.create c.seed) spec

let solvers =
  [
    ("alg3", fun g -> Alg_conflict_free.solve g params);
    ("alg4", fun g -> Alg_prim.solve g params);
    ("eqcast", fun g -> Qnet_baselines.Eqcast.solve g params);
  ]

(* 1. Every capacity-respecting solver's output passes the independent
   verifier. *)
let prop_solutions_verify =
  QCheck.Test.make ~name:"solver outputs pass Verify.check" ~count:120 net_arb
    (fun c ->
      let g = build c in
      List.for_all
        (fun (_, solve) ->
          match solve g with
          | None -> true
          | Some tree -> Verify.is_valid g params ~users:(Graph.users g) tree)
        solvers)

(* 2. Rates always lie in [0, 1]. *)
let prop_rates_in_unit_interval =
  QCheck.Test.make ~name:"rates lie in [0, 1]" ~count:120 net_arb (fun c ->
      let g = build c in
      List.for_all
        (fun (_, solve) ->
          match solve g with
          | None -> true
          | Some tree ->
              let r = Ent_tree.rate_prob tree in
              r >= 0. && r <= 1.)
        solvers)

(* 3. A solution has exactly |U| - 1 channels. *)
let prop_tree_size =
  QCheck.Test.make ~name:"trees have |U|-1 channels" ~count:120 net_arb
    (fun c ->
      let g = build c in
      List.for_all
        (fun (_, solve) ->
          match solve g with
          | None -> true
          | Some tree ->
              Ent_tree.channel_count tree = Graph.user_count g - 1)
        solvers)

(* 4. Under the sufficient condition, Algorithm 2 solves, its output is
   capacity-valid, and no heuristic beats it. *)
let prop_alg2_optimal_under_condition =
  QCheck.Test.make ~name:"alg2 dominates under sufficient condition"
    ~count:100 net_arb (fun c ->
      let c = { c with qubits = 2 * c.users } in
      let g = build c in
      match Alg_optimal.solve g params with
      | None -> false (* sufficient condition + connected -> solvable *)
      | Some t2 ->
          Verify.is_valid g params ~users:(Graph.users g) t2
          && List.for_all
               (fun (_, solve) ->
                 match solve g with
                 | None -> true
                 | Some t ->
                     Ent_tree.rate_neg_log t
                     >= Ent_tree.rate_neg_log t2 -. 1e-9)
               solvers)

(* 5. Algorithm 1's channel between a fixed pair never improves when
   capacity shrinks (monotonicity). *)
let prop_routing_monotone_in_capacity =
  QCheck.Test.make ~name:"best channel monotone in switch capacity" ~count:80
    net_arb (fun c ->
      let g = build c in
      let users = Graph.users g in
      match users with
      | u0 :: u1 :: _ ->
          let rate qubits =
            let g' =
              Graph.with_qubits g (fun v ->
                  match v.Graph.kind with
                  | Graph.User -> v.Graph.qubits
                  | Graph.Switch -> qubits)
            in
            let capacity = Capacity.of_graph g' in
            match Routing.best_channel g' params ~capacity ~src:u0 ~dst:u1 with
            | None -> 0.
            | Some ch -> Channel.rate_prob ch
          in
          rate 8 >= rate 2 -. 1e-12
      | _ -> true)

(* 6. The Monte-Carlo estimator brackets the analytic rate (statistical,
   but with 50k trials and a 95% CI the flake rate is ~5%; we accept a
   generous tolerance instead of the CI to keep it deterministic). *)
let prop_monte_carlo_close =
  QCheck.Test.make ~name:"Monte-Carlo tracks Eq. (2)" ~count:12 net_arb
    (fun c ->
      let g = build c in
      match Alg_conflict_free.solve g params with
      | None -> true
      | Some tree ->
          let p = Ent_tree.rate_prob tree in
          if p < 1e-3 then true (* too rare to sample cheaply *)
          else begin
            let est =
              Qnet_sim.Monte_carlo.estimate_rate
                (Prng.create (c.seed + 77))
                g params tree ~trials:50_000
            in
            Float.abs (est.Qnet_sim.Monte_carlo.p_hat -. p)
            < 0.05 +. (0.2 *. p)
          end)

(* 7. Qubit usage accounted by Ent_tree matches a recount from channel
   interiors. *)
let prop_qubit_usage_consistent =
  QCheck.Test.make ~name:"qubit usage equals interior recount" ~count:100
    net_arb (fun c ->
      let g = build c in
      match Alg_prim.solve g params with
      | None -> true
      | Some tree ->
          let recount = Hashtbl.create 16 in
          List.iter
            (fun ch ->
              List.iter
                (fun s ->
                  Hashtbl.replace recount s
                    (2 + (try Hashtbl.find recount s with Not_found -> 0)))
                (Channel.interior_switches ch))
            tree.Ent_tree.channels;
          List.for_all
            (fun (s, n) -> (try Hashtbl.find recount s with Not_found -> 0) = n)
            (Ent_tree.qubit_usage tree)
          && Hashtbl.length recount
             = List.length (Ent_tree.qubit_usage tree))

(* 8. Channel construction round-trips through make for every channel in
   every produced solution (stored rates match Eq. (1)). *)
let prop_channels_roundtrip =
  QCheck.Test.make ~name:"channels round-trip through Channel.make"
    ~count:100 net_arb (fun c ->
      let g = build c in
      match Alg_conflict_free.solve g params with
      | None -> true
      | Some tree ->
          List.for_all
            (fun (ch : Channel.t) ->
              match Channel.make g params ch.Channel.path with
              | Error _ -> false
              | Ok rebuilt ->
                  Float.abs
                    (Channel.rate_prob rebuilt -. Channel.rate_prob ch)
                  < 1e-12)
            tree.Ent_tree.channels)

(* 9. Removing edges never increases Algorithm 2's rate beyond
   tolerance... it CAN increase heuristics' rates (the paper's Fig. 7b
   observation 3), but Algorithm 2 with ample capacity is a maximum
   spanning structure: fewer edges can only hurt it. *)
let prop_alg2_monotone_under_edge_removal =
  QCheck.Test.make ~name:"alg2 rate monotone under edge removal" ~count:60
    net_arb (fun c ->
      let c = { c with qubits = 2 * c.users } in
      let g = build c in
      let rate g =
        match Alg_optimal.solve g params with
        | None -> 0.
        | Some t -> Ent_tree.rate_prob t
      in
      let r0 = rate g in
      (* Remove one arbitrary (seed-chosen) edge. *)
      let rng = Prng.create (c.seed * 13) in
      let doomed = Prng.int rng (Graph.edge_count g) in
      let g' = Graph.remove_edges g [ doomed ] in
      rate g' <= r0 +. 1e-12)

(* 10. The PRNG-seeded pipeline is fully deterministic end-to-end. *)
let prop_end_to_end_deterministic =
  QCheck.Test.make ~name:"pipeline deterministic per seed" ~count:40 net_arb
    (fun c ->
      let run () =
        let g = build c in
        List.map
          (fun (_, solve) ->
            match solve g with
            | None -> nan
            | Some t -> Ent_tree.rate_neg_log t)
          solvers
      in
      let a = run () and b = run () in
      List.for_all2
        (fun x y -> (Float.is_nan x && Float.is_nan y) || x = y)
        a b)

(* 11. Redundancy boosting never reduces the rate and never overcommits
   any switch. *)
let prop_redundancy_never_hurts =
  QCheck.Test.make ~name:"redundancy boost dominates its base tree"
    ~count:80 net_arb (fun c ->
      let g = build c in
      match Alg_conflict_free.solve g params with
      | None -> true
      | Some tree -> (
          let boosted = Redundancy.boost g params tree in
          boosted.Redundancy.rate >= Ent_tree.rate_prob tree -. 1e-15
          && List.for_all
               (fun (s, used) -> used <= Graph.qubits g s)
               (Redundancy.qubit_usage boosted)))

(* 12. Fidelity-constrained solutions always clear their threshold and
   never beat the unconstrained rate. *)
let prop_fidelity_solutions_meet_threshold =
  QCheck.Test.make ~name:"fidelity solver meets threshold, costs rate"
    ~count:60 net_arb (fun c ->
      let g = build c in
      let config = { Fidelity.f0 = 0.98; threshold = 0.93 } in
      match Fidelity.solve_kruskal g params config with
      | None -> true
      | Some tree ->
          Fidelity.tree_min_fidelity ~f0:config.Fidelity.f0 tree
          >= config.Fidelity.threshold
          && Verify.is_valid g params ~users:(Graph.users g) tree
          &&
          let unconstrained =
            match Alg_optimal.solve g params with
            | None -> infinity
            | Some t -> Ent_tree.rate_neg_log t
          in
          Ent_tree.rate_neg_log tree >= unconstrained -. 1e-9)

(* 13. Yen's k = 1 always agrees with Algorithm 1, and larger k yields
   weakly worse subsequent candidates. *)
let prop_multipath_consistent =
  QCheck.Test.make ~name:"k-best consistent with Algorithm 1" ~count:60
    net_arb (fun c ->
      let g = build c in
      let capacity = Capacity.of_graph g in
      match Graph.users g with
      | u0 :: u1 :: _ -> (
          let best = Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 in
          let ks =
            Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:4
          in
          (match (best, ks) with
          | None, [] -> true
          | Some b, first :: _ ->
              Float.abs (Channel.rate_prob b -. Channel.rate_prob first)
              < 1e-12
          | _ -> false)
          &&
          let rec descending = function
            | [] | [ _ ] -> true
            | (a : Channel.t) :: ((b : Channel.t) :: _ as rest) ->
                Channel.rate_prob a >= Channel.rate_prob b -. 1e-15
                && descending rest
          in
          descending ks)
      | _ -> true)

(* 14. The online scheduler conserves requests and never leaks leases:
   after it finishes, every accepted tree respected capacity at its
   admission instant (checked internally), and accepted + rejected =
   arrived. *)
let prop_scheduler_conservation =
  QCheck.Test.make ~name:"scheduler conserves requests" ~count:40 net_arb
    (fun c ->
      let c = { c with users = max 4 c.users } in
      let g = build c in
      let rng = Prng.create (c.seed + 31) in
      let requests =
        Qnet_sim.Scheduler.random_requests rng g ~n:20 ~mean_gap:1.5
          ~max_group:(min 4 (Graph.user_count g))
          ~duration_range:(1, 5)
      in
      let stats, outcomes =
        Qnet_sim.Scheduler.run ~policy:(Qnet_sim.Scheduler.Queue 3) g params
          ~requests
      in
      stats.Qnet_sim.Scheduler.arrived = 20
      && List.length outcomes = 20
      && stats.Qnet_sim.Scheduler.accepted
         + stats.Qnet_sim.Scheduler.rejected
         = 20
      && List.for_all
           (fun (o : Qnet_sim.Scheduler.outcome) ->
             match o.Qnet_sim.Scheduler.disposition with
             | Qnet_sim.Scheduler.Accepted { tree; _ } ->
                 Ent_tree.spans_users tree
                   o.Qnet_sim.Scheduler.request.Qnet_sim.Scheduler.users
             | Qnet_sim.Scheduler.Rejected _ -> true)
           outcomes)

(* 15. Multi-group solutions never oversubscribe shared switches. *)
let prop_multi_group_shared_capacity =
  QCheck.Test.make ~name:"multi-group respects shared capacity" ~count:60
    net_arb (fun c ->
      let c = { c with users = max 4 c.users } in
      let g = build c in
      let users = Graph.users g in
      let rec pairs = function
        | a :: b :: rest -> [ a; b ] :: pairs rest
        | _ -> []
      in
      let groups = pairs users in
      if groups = [] then true
      else begin
        let r = Multi_group.solve g params ~groups in
        let usage = Hashtbl.create 16 in
        List.iter
          (fun (gr : Multi_group.group_result) ->
            match gr.Multi_group.tree with
            | None -> ()
            | Some tree ->
                List.iter
                  (fun (s, n) ->
                    Hashtbl.replace usage s
                      (n + (try Hashtbl.find usage s with Not_found -> 0)))
                  (Ent_tree.qubit_usage tree))
          r.Multi_group.groups;
        Hashtbl.fold
          (fun s n acc -> acc && n <= Graph.qubits g s)
          usage true
      end)

(* 16. Networks round-trip exactly through the s-expression codec. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"graph codec round-trips" ~count:60 net_arb (fun c ->
      let g = build c in
      match Qnet_graph.Codec.graph_of_sexp (Qnet_graph.Codec.graph_to_sexp g)
      with
      | Error _ -> false
      | Ok g' ->
          Graph.vertex_count g = Graph.vertex_count g'
          && Graph.edge_count g = Graph.edge_count g'
          && List.for_all
               (fun i ->
                 let v = Graph.vertex g i and v' = Graph.vertex g' i in
                 v.Graph.kind = v'.Graph.kind
                 && v.Graph.qubits = v'.Graph.qubits
                 && v.Graph.x = v'.Graph.x && v.Graph.y = v'.Graph.y)
               (List.init (Graph.vertex_count g) (fun i -> i))
          && List.for_all
               (fun i ->
                 let e = Graph.edge g i and e' = Graph.edge g' i in
                 e.Graph.a = e'.Graph.a && e.Graph.b = e'.Graph.b
                 && e.Graph.length = e'.Graph.length)
               (List.init (Graph.edge_count g) (fun i -> i)))

(* 17. Dijkstra agrees with Bellman-Ford-style relaxation on random
   networks (same weights, full admission). *)
let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra matches bellman-ford" ~count:40 net_arb
    (fun c ->
      let g = build c in
      let weight (e : Graph.edge) = e.Graph.length in
      let n = Graph.vertex_count g in
      let source = 0 in
      let d = Qnet_graph.Paths.dijkstra g ~source ~weight () in
      (* Bellman-Ford: n-1 relaxation sweeps over every edge. *)
      let bf = Array.make n infinity in
      bf.(source) <- 0.;
      for _ = 1 to n - 1 do
        Graph.iter_edges g (fun e ->
            let relax u v =
              if bf.(u) +. weight e < bf.(v) then bf.(v) <- bf.(u) +. weight e
            in
            relax e.Graph.a e.Graph.b;
            relax e.Graph.b e.Graph.a)
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        let dv = d.Qnet_graph.Paths.dist.(v) in
        if
          not
            ((dv = infinity && bf.(v) = infinity)
            || Float.abs (dv -. bf.(v)) <= 1e-6 *. (1. +. bf.(v)))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "properties"
    [
      ( "invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_solutions_verify;
            prop_rates_in_unit_interval;
            prop_tree_size;
            prop_alg2_optimal_under_condition;
            prop_routing_monotone_in_capacity;
            prop_qubit_usage_consistent;
            prop_channels_roundtrip;
            prop_alg2_monotone_under_edge_removal;
            prop_end_to_end_deterministic;
          ] );
      ( "extensions",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_redundancy_never_hurts;
            prop_fidelity_solutions_meet_threshold;
            prop_multipath_consistent;
            prop_scheduler_conservation;
            prop_multi_group_shared_capacity;
            prop_codec_roundtrip;
            prop_dijkstra_matches_bellman_ford;
          ] );
      ( "statistical",
        List.map QCheck_alcotest.to_alcotest [ prop_monte_carlo_close ] );
    ]
