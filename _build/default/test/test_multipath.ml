(* Unit tests for Qnet_core.Multipath (Yen k-best channels) and
   Qnet_core.Alg_kbest. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let feq = Alcotest.(check (float 1e-12))
let params = Params.default

(* Three parallel relay routes between u0 and u1 of increasing cost. *)
let parallel_fixture () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let switch x y =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y
  in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let mk_route off =
    let s = switch 1000. off in
    let len = 1000. +. Float.abs off in
    ignore (Graph.Builder.add_edge b u0 s len);
    ignore (Graph.Builder.add_edge b s u1 len);
    s
  in
  let s_a = mk_route 0. in
  let s_b = mk_route 400. in
  let s_c = mk_route 800. in
  (Graph.Builder.freeze b, u0, u1, s_a, s_b, s_c)

let test_enumerates_in_rate_order () =
  let g, u0, u1, s_a, s_b, s_c = parallel_fixture () in
  let capacity = Capacity.of_graph g in
  let cs =
    Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:3
  in
  check_int "three routes" 3 (List.length cs);
  let mids = List.map (fun (c : Channel.t) -> List.nth c.path 1) cs in
  Alcotest.(check (list int)) "shortest relay first" [ s_a; s_b; s_c ] mids;
  let rates = List.map Channel.rate_prob cs in
  check_bool "strictly descending" true
    (rates = List.sort (fun a b -> Float.compare b a) rates)

let test_first_matches_algorithm1 () =
  let g, u0, u1, _, _, _ = parallel_fixture () in
  let capacity = Capacity.of_graph g in
  let best = Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 in
  let cs = Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:1 in
  match (best, cs) with
  | Some b, [ c ] -> feq "same rate" (Channel.rate_prob b) (Channel.rate_prob c)
  | _ -> Alcotest.fail "both should find the route"

let test_fewer_than_k () =
  let g, u0, u1, _, _, _ = parallel_fixture () in
  let capacity = Capacity.of_graph g in
  let cs =
    Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:10
  in
  (* Only 3 loopless switch-interior routes exist... plus combinations
     through two relays?  Relays are not interconnected, so exactly 3. *)
  check_int "exhausts at 3" 3 (List.length cs)

let test_paths_distinct () =
  let rng = Prng.create 5 in
  let spec =
    Qnet_topology.Spec.create ~n_users:4 ~n_switches:16 ~qubits_per_switch:8 ()
  in
  let g = Qnet_topology.Waxman.generate rng spec in
  let capacity = Capacity.of_graph g in
  match Graph.users g with
  | u0 :: u1 :: _ ->
      let cs =
        Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:6
      in
      let paths = List.map (fun (c : Channel.t) -> c.Channel.path) cs in
      check_int "all distinct" (List.length paths)
        (List.length (List.sort_uniq compare paths));
      (* And every one validates as a channel of this graph. *)
      List.iter
        (fun (c : Channel.t) ->
          check_bool "valid channel" true
            (match Channel.make g params c.Channel.path with
            | Ok _ -> true
            | Error _ -> false))
        cs
  | _ -> Alcotest.fail "fixture"

let test_respects_capacity_filter () =
  let g, u0, u1, s_a, _, _ = parallel_fixture () in
  let capacity = Capacity.of_graph g in
  (* Drain route A's relay. *)
  Capacity.consume_channel capacity [ u0; s_a; u1 ];
  Capacity.consume_channel capacity [ u0; s_a; u1 ];
  let cs =
    Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:u1 ~k:3
  in
  check_int "two routes left" 2 (List.length cs);
  check_bool "drained relay absent" true
    (List.for_all
       (fun (c : Channel.t) -> not (List.mem s_a c.Channel.path))
       cs)

let test_q_zero () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  let g = Graph.Builder.freeze b in
  let capacity = Capacity.of_graph g in
  let p0 = Params.create ~q:0. () in
  check_int "direct only" 1
    (List.length (Multipath.k_best_channels g p0 ~capacity ~src:u0 ~dst:u1 ~k:5))

let test_validation () =
  let g, u0, _, s_a, _, _ = parallel_fixture () in
  let capacity = Capacity.of_graph g in
  Alcotest.check_raises "k >= 1"
    (Invalid_argument "Multipath.k_best_channels: k < 1") (fun () ->
      ignore (Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:1 ~k:0));
  Alcotest.check_raises "user endpoints"
    (Invalid_argument "Multipath.k_best_channels: endpoints must be users")
    (fun () ->
      ignore
        (Multipath.k_best_channels g params ~capacity ~src:u0 ~dst:s_a ~k:1))

let test_vertex_disjoint () =
  let g, u0, u1, s_a, s_b, _ = parallel_fixture () in
  let via s = Channel.make_exn g params [ u0; s; u1 ] in
  check_bool "different relays disjoint" true
    (Multipath.channels_vertex_disjoint (via s_a) (via s_b));
  check_bool "same relay not disjoint" false
    (Multipath.channels_vertex_disjoint (via s_a) (via s_a))

(* ---- Alg_kbest ---- *)

let random_network ?(qubits = 2) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:6 ~n_switches:20
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_kbest_solver_valid () =
  for seed = 1 to 10 do
    let g = random_network seed in
    match Alg_kbest.solve g params with
    | None -> ()
    | Some tree ->
        check_bool "verifies" true
          (Verify.is_valid g params ~users:(Graph.users g) tree)
  done

let test_kbest_matches_alg3_without_conflicts () =
  for seed = 1 to 8 do
    let g = random_network ~qubits:12 (40 + seed) in
    match (Alg_conflict_free.solve g params, Alg_kbest.solve g params) with
    | Some t3, Some tk ->
        Alcotest.(check (float 1e-9))
          "same rate when capacity is ample"
          (Ent_tree.rate_neg_log t3) (Ent_tree.rate_neg_log tk)
    | _ -> Alcotest.fail "ample capacity should solve both"
  done

let test_kbest_never_beats_alg2 () =
  for seed = 1 to 10 do
    let g = random_network (60 + seed) in
    match (Alg_optimal.solve g params, Alg_kbest.solve g params) with
    | Some t2, Some tk ->
        check_bool "upper bounded by alg2" true
          (Ent_tree.rate_neg_log tk >= Ent_tree.rate_neg_log t2 -. 1e-9)
    | _ -> ()
  done

let () =
  Alcotest.run "multipath"
    [
      ( "yen",
        [
          Alcotest.test_case "rate order" `Quick test_enumerates_in_rate_order;
          Alcotest.test_case "k=1 = Algorithm 1" `Quick
            test_first_matches_algorithm1;
          Alcotest.test_case "fewer than k" `Quick test_fewer_than_k;
          Alcotest.test_case "distinct paths" `Quick test_paths_distinct;
          Alcotest.test_case "capacity filter" `Quick
            test_respects_capacity_filter;
          Alcotest.test_case "q = 0" `Quick test_q_zero;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "vertex disjoint" `Quick test_vertex_disjoint;
        ] );
      ( "alg_kbest",
        [
          Alcotest.test_case "valid" `Quick test_kbest_solver_valid;
          Alcotest.test_case "matches alg3" `Quick
            test_kbest_matches_alg3_without_conflicts;
          Alcotest.test_case "bounded by alg2" `Quick
            test_kbest_never_beats_alg2;
        ] );
    ]
