(* Unit tests for Qnet_core.Feasibility and the Theorem 1/2 reduction
   artifacts. *)

module Graph = Qnet_graph.Graph
module Dcst = Qnet_graph.Dcst
open Qnet_core

let check_bool = Alcotest.(check bool)
let params = Params.default

let verdict =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Feasibility.Feasible -> "feasible"
        | Feasibility.Infeasible -> "infeasible"
        | Feasibility.Unknown -> "unknown"))
    ( = )

(* All-user graphs used to instantiate the DCSTP reduction of Theorem 1:
   every vertex is a user with qubit budget 2k (capacity for k
   channels), edges are unit fibers.  Wait — users are capacity-free in
   MUERP, so the reduction instead maps DCSTP vertices to users joined
   through per-edge relay switches whose budget enforces the degree.
   Here we test the simpler direction the paper uses: a feasible MUERP
   solution restricted to direct user fibers is a degree-bounded
   spanning tree. *)

let triangle_with_hub qubits =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  Graph.Builder.freeze b

let test_necessary_condition () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (u0, u1);
  let g = Graph.Builder.freeze b in
  check_bool "disconnected users" false (Feasibility.necessary_condition g);
  Alcotest.check verdict "quick says infeasible" Feasibility.Infeasible
    (Feasibility.quick_verdict g)

let test_sufficient_condition () =
  let g = triangle_with_hub 6 in
  (* 3 users need Q >= 6: met. *)
  check_bool "sufficient holds" true (Feasibility.sufficient_condition g);
  Alcotest.check verdict "quick says feasible" Feasibility.Feasible
    (Feasibility.quick_verdict g)

let test_gray_zone () =
  let g = triangle_with_hub 4 in
  (* Q = 4 < 6: conditions silent, though actually feasible. *)
  Alcotest.check verdict "quick is unknown" Feasibility.Unknown
    (Feasibility.quick_verdict g);
  Alcotest.check verdict "exact resolves to feasible" Feasibility.Feasible
    (Feasibility.exact_verdict g params)

let test_exact_detects_infeasible () =
  let g = triangle_with_hub 2 in
  Alcotest.check verdict "2-qubit hub infeasible" Feasibility.Infeasible
    (Feasibility.exact_verdict g params)

let test_sufficient_implies_solvable () =
  (* Theorem 3's premise: whenever the sufficient condition holds on a
     connected network, Algorithm 2 must find a solution. *)
  for seed = 1 to 10 do
    let rng = Qnet_util.Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:5 ~n_switches:15
        ~qubits_per_switch:10 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    check_bool "condition" true (Feasibility.sufficient_condition g);
    check_bool "alg2 solves" true (Alg_optimal.solve g params <> None)
  done

(* Theorem 1 reduction sanity: build a MUERP instance from a DCSTP
   instance by replacing each graph edge (u, v) with a user-switch-user
   gadget where the relay switch has 2 qubits (one channel), and give
   each DCSTP vertex's user identity a budget via... users are
   unbounded, so instead bound the degree by routing all of a user's
   channels through a personal gateway switch with k-channel capacity.
   A degree-k spanning tree exists iff the MUERP instance is feasible. *)
let dcstp_to_muerp edges n k =
  let b = Graph.Builder.create () in
  let users =
    Array.init n (fun i ->
        Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
          ~x:(float_of_int i *. 1000.)
          ~y:0.)
  in
  (* Personal gateway: every channel of user i must pass through it. *)
  let gateways =
    Array.init n (fun i ->
        Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:(2 * k)
          ~x:(float_of_int i *. 1000.)
          ~y:500.)
  in
  Array.iteri
    (fun i u -> ignore (Graph.Builder.add_edge b u gateways.(i) 100.))
    users;
  List.iter
    (fun (i, j) ->
      ignore (Graph.Builder.add_edge b gateways.(i) gateways.(j) 1000.))
    edges;
  Graph.Builder.freeze b

let test_theorem1_reduction_positive () =
  (* 4-cycle admits a degree-2 spanning tree; the derived MUERP instance
     with k = 2 must be feasible. *)
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let g = dcstp_to_muerp edges 4 2 in
  Alcotest.check verdict "cycle, k=2" Feasibility.Feasible
    (Feasibility.exact_verdict
       ~bounds:{ Exact.default_bounds with Exact.max_users = 4; max_vertices = 8 }
       g params)

let test_theorem1_reduction_negative () =
  (* Star K_{1,3}: any spanning tree needs center degree 3, so k = 2 is
     infeasible — and so is the derived MUERP instance. *)
  let edges = [ (0, 1); (0, 2); (0, 3) ] in
  check_bool "DCSTP says no" false
    (let b = Graph.Builder.create () in
     let vs =
       Array.init 4 (fun i ->
           Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
             ~x:(float_of_int i) ~y:0.)
     in
     List.iter
       (fun (i, j) -> ignore (Graph.Builder.add_edge b vs.(i) vs.(j) 1.))
       edges;
     Dcst.exists_spanning_tree_with_max_degree (Graph.Builder.freeze b)
       ~max_degree:2);
  let g = dcstp_to_muerp edges 4 2 in
  Alcotest.check verdict "star, k=2 infeasible" Feasibility.Infeasible
    (Feasibility.exact_verdict
       ~bounds:{ Exact.default_bounds with Exact.max_users = 4; max_vertices = 8 }
       g params)

let () =
  Alcotest.run "feasibility"
    [
      ( "conditions",
        [
          Alcotest.test_case "necessary" `Quick test_necessary_condition;
          Alcotest.test_case "sufficient" `Quick test_sufficient_condition;
          Alcotest.test_case "gray zone" `Quick test_gray_zone;
          Alcotest.test_case "exact infeasible" `Quick
            test_exact_detects_infeasible;
          Alcotest.test_case "sufficient implies solvable" `Quick
            test_sufficient_implies_solvable;
        ] );
      ( "theorem 1 reduction",
        [
          Alcotest.test_case "positive instance" `Quick
            test_theorem1_reduction_positive;
          Alcotest.test_case "negative instance" `Quick
            test_theorem1_reduction_negative;
        ] );
    ]
