(* Unit tests for the qnet_topology library: layout, spec, assembly and
   the four generators. *)

module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Prng = Qnet_util.Prng
open Qnet_topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Layout ---------------- *)

let test_layout_distance () =
  let a = Layout.{ x = 0.; y = 0. } and b = Layout.{ x = 3.; y = 4. } in
  Alcotest.(check (float 1e-9)) "3-4-5" 5. (Layout.distance a b)

let test_layout_random_points () =
  let rng = Prng.create 1 in
  let pts = Layout.random_points rng ~area:100. 500 in
  check_int "count" 500 (Array.length pts);
  Array.iter
    (fun (p : Layout.point) ->
      check_bool "in area" true (p.x >= 0. && p.x < 100. && p.y >= 0. && p.y < 100.))
    pts

let test_layout_ring () =
  let pts = Layout.ring_points ~area:100. 8 in
  check_int "count" 8 (Array.length pts);
  (* All at the same radius from the center. *)
  let center = Layout.{ x = 50.; y = 50. } in
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-6)) "radius" 45. (Layout.distance center p))
    pts

let test_layout_max_distance () =
  Alcotest.(check (float 1e-9))
    "diagonal" (100. *. sqrt 2.)
    (Layout.max_distance ~area:100.)

(* ---------------- Spec ---------------- *)

let test_spec_default () =
  let s = Spec.default in
  check_int "users" 10 s.Spec.n_users;
  check_int "switches" 50 s.Spec.n_switches;
  check_int "vertex count" 60 (Spec.vertex_count s);
  check_int "edge budget 6*60/2" 180 (Spec.target_edges s)

let test_spec_validation () =
  Alcotest.check_raises "no users"
    (Invalid_argument "Spec: need at least one user") (fun () ->
      ignore (Spec.create ~n_users:0 ()));
  Alcotest.check_raises "bad degree"
    (Invalid_argument "Spec: avg_degree must be positive and finite")
    (fun () -> ignore (Spec.create ~avg_degree:0. ()))

let test_spec_edge_budget_clamps () =
  (* 4 vertices, degree 10: clamp to the simple-graph max of 6. *)
  let s = Spec.create ~n_users:2 ~n_switches:2 ~avg_degree:10. () in
  check_int "clamp to complete graph" 6 (Spec.target_edges s);
  (* Degree 0.1 clamps up to a spanning count. *)
  let s = Spec.create ~n_users:2 ~n_switches:2 ~avg_degree:0.1 () in
  check_int "clamp to n-1" 3 (Spec.target_edges s)

(* ---------------- Assemble ---------------- *)

let test_assign_roles () =
  let rng = Prng.create 3 in
  let spec = Spec.create ~n_users:4 ~n_switches:6 () in
  let roles = Assemble.assign_roles rng spec in
  check_int "arity" 10 (Array.length roles);
  let users =
    Array.fold_left
      (fun n k -> if k = Graph.User then n + 1 else n)
      0 roles
  in
  check_int "exactly n_users user roles" 4 users

let test_connect_components () =
  let points =
    [|
      Layout.{ x = 0.; y = 0. };
      Layout.{ x = 1.; y = 0. };
      Layout.{ x = 10.; y = 0. };
      Layout.{ x = 11.; y = 0. };
    |]
  in
  let edges = [ (0, 1); (2, 3) ] in
  let extra = Assemble.connect_components points edges in
  check_int "one extra edge" 1 (List.length extra);
  (* The geometrically shortest cross pair is 1-2. *)
  Alcotest.(check (list (pair int int))) "shortest bridge" [ (1, 2) ] extra

let test_connect_components_noop () =
  let points = [| Layout.{ x = 0.; y = 0. }; Layout.{ x = 1.; y = 0. } |] in
  Alcotest.(check (list (pair int int)))
    "already connected" []
    (Assemble.connect_components points [ (0, 1) ])

(* ---------------- Generators ---------------- *)

let generators =
  [
    ("waxman", Generate.waxman);
    ("watts-strogatz", Generate.watts_strogatz);
    ("volchenkov", Generate.volchenkov);
    ("grid", Generate.grid);
  ]

let spec = Spec.create ~n_users:8 ~n_switches:24 ~qubits_per_switch:4 ()

let test_generators_connected () =
  List.iter
    (fun (name, kind) ->
      for seed = 1 to 5 do
        let rng = Prng.create seed in
        let g = Generate.run kind rng spec in
        check_bool (name ^ " connected") true (Paths.is_connected g);
        check_int (name ^ " vertex count") 32 (Graph.vertex_count g);
        check_int (name ^ " users") 8 (Graph.user_count g)
      done)
    generators

let test_generators_deterministic () =
  List.iter
    (fun (name, kind) ->
      let g1 = Generate.run kind (Prng.create 7) spec in
      let g2 = Generate.run kind (Prng.create 7) spec in
      check_int (name ^ " same edges") (Graph.edge_count g1)
        (Graph.edge_count g2);
      Graph.iter_edges g1 (fun e ->
          let e2 = Graph.edge g2 e.Graph.eid in
          check_bool (name ^ " edge match") true
            (e.Graph.a = e2.Graph.a && e.Graph.b = e2.Graph.b)))
    generators

let test_generator_seed_variation () =
  let g1 = Generate.run Generate.waxman (Prng.create 1) spec in
  let g2 = Generate.run Generate.waxman (Prng.create 2) spec in
  let same = ref (Graph.edge_count g1 = Graph.edge_count g2) in
  if !same then
    Graph.iter_edges g1 (fun e ->
        let e2 = Graph.edge g2 e.Graph.eid in
        if e.Graph.a <> e2.Graph.a || e.Graph.b <> e2.Graph.b then same := false);
  check_bool "different seeds differ" false !same

let test_waxman_edge_budget () =
  let rng = Prng.create 5 in
  let g = Waxman.generate rng spec in
  let budget = Spec.target_edges spec in
  (* Repair may add a few; never fewer than the budget. *)
  check_bool "at least budget" true (Graph.edge_count g >= budget);
  check_bool "no silly excess" true (Graph.edge_count g <= budget + 10)

let test_waxman_prefers_short_edges () =
  (* Average chosen-edge length must be well below the average pair
     distance (the whole point of the Waxman bias). *)
  let rng = Prng.create 11 in
  let g = Waxman.generate rng Spec.default in
  let mean_len =
    Graph.fold_edges g ~init:0. ~f:(fun acc e -> acc +. e.Graph.length)
    /. float_of_int (Graph.edge_count g)
  in
  (* Mean distance between uniform points in a 10k square is ~5214. *)
  check_bool "bias toward short fibers" true (mean_len < 3500.)

let test_waxman_classic_mode () =
  (* Classic accept/reject: still connected after repair, and a higher
     beta produces denser graphs on average. *)
  let count beta =
    let total = ref 0 in
    for seed = 1 to 5 do
      let g =
        Waxman.generate_classic ~beta (Prng.create seed) Spec.default
      in
      check_bool "classic connected" true (Paths.is_connected g);
      total := !total + Graph.edge_count g
    done;
    !total
  in
  check_bool "denser with higher beta" true (count 0.9 > count 0.3);
  Alcotest.check_raises "beta range"
    (Invalid_argument "Waxman.generate_classic: beta outside (0, 1]")
    (fun () ->
      ignore (Waxman.generate_classic ~beta:0. (Prng.create 1) Spec.default))

let test_watts_strogatz_degree () =
  let rng = Prng.create 9 in
  let g = Watts_strogatz.generate rng spec in
  (* k = 6 lattice: average degree stays near 6 after rewiring. *)
  check_bool "avg degree near k" true
    (Float.abs (Graph.average_degree g -. 6.) < 1.5)

let test_watts_strogatz_beta_zero_is_lattice () =
  let rng = Prng.create 2 in
  let g =
    Watts_strogatz.generate ~params:{ Watts_strogatz.beta = 0.; embedding = Watts_strogatz.Ring } rng spec
  in
  let n = Graph.vertex_count g in
  (* Pure ring lattice: every vertex has degree exactly k = 6. *)
  for v = 0 to n - 1 do
    check_int "lattice degree" 6 (Graph.degree g v)
  done

let test_watts_strogatz_params_validated () =
  Alcotest.check_raises "beta range"
    (Invalid_argument "Watts_strogatz.generate: beta outside [0, 1]")
    (fun () ->
      ignore
        (Watts_strogatz.generate
           ~params:{ Watts_strogatz.beta = 1.5; embedding = Watts_strogatz.Random }
           (Prng.create 1) spec))

let test_volchenkov_heavy_tail () =
  let rng = Prng.create 4 in
  let g = Volchenkov.generate rng Spec.default in
  let degrees =
    List.init (Graph.vertex_count g) (fun v -> Graph.degree g v)
  in
  let dmax = List.fold_left max 0 degrees in
  let avg = Graph.average_degree g in
  check_bool "hub exists (max >> mean)" true (float_of_int dmax > 2. *. avg)

let test_volchenkov_params_validated () =
  Alcotest.check_raises "gamma"
    (Invalid_argument "Volchenkov.generate: gamma <= 1") (fun () ->
      ignore
        (Volchenkov.generate
           ~params:{ Volchenkov.gamma = 1.; k_min = 1 }
           (Prng.create 1) spec))

let test_grid_structure () =
  let rng = Prng.create 6 in
  let g = Grid.generate rng spec in
  check_int "all vertices present" 32 (Graph.vertex_count g);
  check_bool "connected" true (Paths.is_connected g);
  (* Every user has exactly one access fiber. *)
  List.iter
    (fun u -> check_int "user degree 1" 1 (Graph.degree g u))
    (Graph.users g)

let test_grid_rejects_tiny () =
  Alcotest.check_raises "more users than switches"
    (Invalid_argument "Grid.generate: need a switch per user") (fun () ->
      ignore
        (Grid.generate (Prng.create 1)
           (Spec.create ~n_users:5 ~n_switches:4 ())))

let test_generate_names () =
  List.iter
    (fun (name, kind) ->
      Alcotest.(check string) "name roundtrip" name (Generate.name kind);
      check_bool "of_name" true (Generate.of_name name <> None))
    generators;
  check_bool "unknown name" true (Generate.of_name "mystery" = None)

let () =
  Alcotest.run "topology"
    [
      ( "layout",
        [
          Alcotest.test_case "distance" `Quick test_layout_distance;
          Alcotest.test_case "random points" `Quick test_layout_random_points;
          Alcotest.test_case "ring" `Quick test_layout_ring;
          Alcotest.test_case "max distance" `Quick test_layout_max_distance;
        ] );
      ( "spec",
        [
          Alcotest.test_case "default" `Quick test_spec_default;
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "edge budget clamps" `Quick
            test_spec_edge_budget_clamps;
        ] );
      ( "assemble",
        [
          Alcotest.test_case "roles" `Quick test_assign_roles;
          Alcotest.test_case "connect components" `Quick
            test_connect_components;
          Alcotest.test_case "connect noop" `Quick test_connect_components_noop;
        ] );
      ( "generators",
        [
          Alcotest.test_case "connected" `Quick test_generators_connected;
          Alcotest.test_case "deterministic" `Quick
            test_generators_deterministic;
          Alcotest.test_case "seed variation" `Quick
            test_generator_seed_variation;
          Alcotest.test_case "waxman budget" `Quick test_waxman_edge_budget;
          Alcotest.test_case "waxman short bias" `Quick
            test_waxman_prefers_short_edges;
          Alcotest.test_case "waxman classic" `Quick test_waxman_classic_mode;
          Alcotest.test_case "ws degree" `Quick test_watts_strogatz_degree;
          Alcotest.test_case "ws lattice" `Quick
            test_watts_strogatz_beta_zero_is_lattice;
          Alcotest.test_case "ws params" `Quick
            test_watts_strogatz_params_validated;
          Alcotest.test_case "volchenkov tail" `Quick test_volchenkov_heavy_tail;
          Alcotest.test_case "volchenkov params" `Quick
            test_volchenkov_params_validated;
          Alcotest.test_case "grid" `Quick test_grid_structure;
          Alcotest.test_case "grid tiny" `Quick test_grid_rejects_tiny;
          Alcotest.test_case "names" `Quick test_generate_names;
        ] );
    ]
