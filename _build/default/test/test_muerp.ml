(* Unit tests for Qnet_core.Muerp and Qnet_core.Verify. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let params = Params.default

let network seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:6 ~n_switches:20 ~qubits_per_switch:4 ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_algorithm_names () =
  Alcotest.(check string) "alg2" "alg2-optimal" (Muerp.algorithm_name Muerp.Optimal);
  Alcotest.(check string) "alg3" "alg3-conflict-free"
    (Muerp.algorithm_name Muerp.Conflict_free);
  Alcotest.(check string) "alg4" "alg4-prim" (Muerp.algorithm_name Muerp.Prim_based);
  Alcotest.(check string) "exact" "exhaustive" (Muerp.algorithm_name Muerp.Exhaustive);
  Alcotest.(check int) "three heuristics" 3 (List.length Muerp.all_heuristics)

let test_instance_requires_users () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  Alcotest.check_raises "no users"
    (Invalid_argument "Muerp.instance: graph has no users") (fun () ->
      ignore (Muerp.instance g))

let test_solve_outcomes_consistent () =
  let g = network 5 in
  let inst = Muerp.instance ~params g in
  List.iter
    (fun alg ->
      let o = Muerp.solve alg inst in
      check_bool "rate matches tree" true
        (match o.Muerp.tree with
        | None -> o.Muerp.rate = 0. && o.Muerp.neg_log_rate = infinity
        | Some t ->
            Float.abs (o.Muerp.rate -. Ent_tree.rate_prob t) < 1e-12
            && Float.abs (o.Muerp.neg_log_rate -. Ent_tree.rate_neg_log t)
               < 1e-9);
      check_bool "elapsed non-negative" true (o.Muerp.elapsed_s >= 0.);
      Alcotest.(check (float 0.)) "rate_of" o.Muerp.rate (Muerp.rate_of o))
    Muerp.all_heuristics

let test_outcome_capacity_ok () =
  let g = network 6 in
  let inst = Muerp.instance ~params g in
  List.iter
    (fun alg ->
      let o = Muerp.solve alg inst in
      check_bool "capacity-respecting algorithms pass" true
        (Muerp.outcome_capacity_ok inst o))
    [ Muerp.Conflict_free; Muerp.Prim_based ]

let test_verify_accepts_solver_output () =
  let g = network 7 in
  let inst = Muerp.instance ~params g in
  match (Muerp.solve Muerp.Conflict_free inst).Muerp.tree with
  | None -> ()
  | Some tree ->
      Alcotest.(check (list Alcotest.reject))
        "no violations" []
        (Verify.check g params ~users:(Graph.users g) tree)

let test_verify_catches_bad_channel () =
  let g = network 8 in
  (* Forge a tree with a channel from a different graph topology. *)
  let g2 = network 9 in
  let inst2 = Muerp.instance ~params g2 in
  match (Muerp.solve Muerp.Conflict_free inst2).Muerp.tree with
  | None -> ()
  | Some foreign_tree ->
      let violations =
        Verify.check g params ~users:(Graph.users g) foreign_tree
      in
      check_bool "foreign tree rejected" true (violations <> [])

let test_verify_catches_capacity_violation () =
  (* Hand-build the over-committed star from test_alg_optimal. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  let tree =
    Ent_tree.of_channels
      [
        Channel.make_exn g params [ u0; hub; u1 ];
        Channel.make_exn g params [ u0; hub; u2 ];
      ]
  in
  let violations = Verify.check g params ~users:[ u0; u1; u2 ] tree in
  check_bool "capacity violation reported" true
    (List.exists
       (function Verify.Capacity_exceeded (s, 4, 2) -> s = hub | _ -> false)
       violations)

let test_verify_catches_non_tree () =
  let g = network 10 in
  let users = Graph.users g in
  let inst = Muerp.instance ~params g in
  match (Muerp.solve Muerp.Conflict_free inst).Muerp.tree with
  | None -> ()
  | Some tree ->
      (* Drop one channel: no longer spanning. *)
      let partial =
        Ent_tree.of_channels (List.tl tree.Ent_tree.channels)
      in
      check_bool "partial tree rejected" true
        (List.exists
           (function Verify.Not_a_spanning_tree -> true | _ -> false)
           (Verify.check g params ~users partial))

let test_exhaustive_via_muerp () =
  let rng = Prng.create 12 in
  let spec =
    Qnet_topology.Spec.create ~n_users:3 ~n_switches:5 ~avg_degree:4.
      ~qubits_per_switch:4 ()
  in
  let g = Qnet_topology.Waxman.generate rng spec in
  let inst = Muerp.instance ~params g in
  let o = Muerp.solve Muerp.Exhaustive inst in
  check_bool "exhaustive solves small instances" true (o.Muerp.tree <> None)

let () =
  Alcotest.run "muerp"
    [
      ( "api",
        [
          Alcotest.test_case "names" `Quick test_algorithm_names;
          Alcotest.test_case "instance validation" `Quick
            test_instance_requires_users;
          Alcotest.test_case "outcomes" `Quick test_solve_outcomes_consistent;
          Alcotest.test_case "capacity flag" `Quick test_outcome_capacity_ok;
          Alcotest.test_case "exhaustive" `Quick test_exhaustive_via_muerp;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts solver output" `Quick
            test_verify_accepts_solver_output;
          Alcotest.test_case "bad channel" `Quick test_verify_catches_bad_channel;
          Alcotest.test_case "capacity violation" `Quick
            test_verify_catches_capacity_violation;
          Alcotest.test_case "non tree" `Quick test_verify_catches_non_tree;
        ] );
    ]
