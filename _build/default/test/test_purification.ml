(* Unit tests for Qnet_core.Purification (BBPSSW recurrence). *)

module Graph = Qnet_graph.Graph
open Qnet_core

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_purify_once_closed_form () =
  let f = 0.85 in
  let g = 1. -. f in
  let p_expected = (f *. f) +. (2. *. f *. g /. 3.) +. (5. *. g *. g /. 9.) in
  let f_expected = ((f *. f) +. (g *. g /. 9.)) /. p_expected in
  let f', p = Purification.purify_once f in
  feq "fidelity" f_expected f';
  feq "success probability" p_expected p;
  check_bool "purification helps above 1/2" true (f' > f);
  check_bool "success prob in (0,1]" true (p > 0. && p <= 1.)

let test_fixed_points () =
  (* F = 1 is a fixed point with certain success. *)
  let f', p = Purification.purify_once 1. in
  feq "perfect stays perfect" 1. f';
  feq "certain success" 1. p;
  (* Below 1/2 BBPSSW does not improve. *)
  let f', _ = Purification.purify_once 0.4 in
  check_bool "no gain below 1/2" true (f' <= 0.4 +. 1e-9)

let test_purify_rounds () =
  let f, mult = Purification.purify_rounds 0.8 ~rounds:0 in
  feq "zero rounds identity f" 0.8 f;
  feq "zero rounds identity mult" 1. mult;
  let f1, m1 = Purification.purify_rounds 0.8 ~rounds:1 in
  let f1', p1 = Purification.purify_once 0.8 in
  feq "one round fidelity" f1' f1;
  feq "one round multiplier" (p1 /. 2.) m1;
  let f3, m3 = Purification.purify_rounds 0.8 ~rounds:3 in
  check_bool "more rounds, higher fidelity" true (f3 > f1);
  check_bool "more rounds, lower rate" true (m3 < m1);
  check_bool "multiplier at most (1/2)^rounds" true (m3 <= 0.125 +. 1e-12);
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Purification.purify_rounds: negative rounds")
    (fun () -> ignore (Purification.purify_rounds 0.8 ~rounds:(-1)))

let test_rounds_needed () =
  Alcotest.(check (option int))
    "already above" (Some 0)
    (Purification.rounds_needed ~f:0.95 ~threshold:0.9 ~max_rounds:10);
  (match Purification.rounds_needed ~f:0.8 ~threshold:0.95 ~max_rounds:10 with
  | None -> Alcotest.fail "reachable threshold"
  | Some r ->
      check_bool "positive rounds" true (r > 0);
      let f, _ = Purification.purify_rounds 0.8 ~rounds:r in
      check_bool "meets threshold" true (f >= 0.95);
      let f_prev, _ = Purification.purify_rounds 0.8 ~rounds:(r - 1) in
      check_bool "minimal" true (f_prev < 0.95));
  Alcotest.(check (option int))
    "unreachable below 1/2" None
    (Purification.rounds_needed ~f:0.4 ~threshold:0.9 ~max_rounds:50)

let test_plan_for_channel () =
  (* A 5-hop channel at f0 = 0.97 sits below a 0.95 threshold; the plan
     must fix that. *)
  let f0 = 0.97 in
  let hops = 5 in
  let raw = Fidelity.channel_fidelity ~f0 ~hops in
  check_bool "fixture premise: raw below threshold" true (raw < 0.95);
  match Purification.plan_for_channel ~f0 ~hops ~threshold:0.95 ~max_rounds:10
  with
  | None -> Alcotest.fail "plan should exist"
  | Some plan ->
      check_bool "final meets threshold" true
        (plan.Purification.final_fidelity >= 0.95);
      check_bool "rounds positive" true (plan.Purification.rounds > 0);
      check_bool "rate shrinks" true (plan.Purification.rate_multiplier < 1.)

let test_effective_tree_rate () =
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let switch x =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0.
  in
  let u0 = user 0. in
  let u1 = user 2000. in
  let u2 = user 4000. in
  let s3 = switch 1000. in
  let s4 = switch 3000. in
  ignore (Graph.Builder.add_edge b u0 s3 1000.);
  ignore (Graph.Builder.add_edge b s3 u1 1000.);
  ignore (Graph.Builder.add_edge b u1 s4 1000.);
  ignore (Graph.Builder.add_edge b s4 u2 1000.);
  let g = Graph.Builder.freeze b in
  let params = Params.default in
  let tree =
    Ent_tree.of_channels
      [
        Channel.make_exn g params [ u0; s3; u1 ];
        Channel.make_exn g params [ u1; s4; u2 ];
      ]
  in
  let raw = Ent_tree.rate_prob tree in
  (* Loose threshold: no purification, rate unchanged. *)
  (match
     Purification.effective_tree_rate ~f0:0.98 ~threshold:0.5 ~max_rounds:5
       tree
   with
  | Some r -> feq "no purification needed" raw r
  | None -> Alcotest.fail "loose threshold feasible");
  (* Tight threshold: purification shrinks the rate. *)
  (match
     Purification.effective_tree_rate ~f0:0.98 ~threshold:0.99 ~max_rounds:20
       tree
   with
  | Some r -> check_bool "purified rate lower" true (r < raw)
  | None -> Alcotest.fail "0.99 reachable from 0.98 pairs via purification");
  (* Unreachable threshold. *)
  check_bool "unreachable gives None" true
    (Purification.effective_tree_rate ~f0:0.6 ~threshold:0.99 ~max_rounds:3
       tree
    = None);
  check_int "tree untouched" 2 (Ent_tree.channel_count tree)

let test_monotone_threshold_cost () =
  (* The effective rate can only fall as the threshold rises. *)
  let f = 0.9 in
  let rate_for threshold =
    match Purification.rounds_needed ~f ~threshold ~max_rounds:20 with
    | None -> 0.
    | Some r -> snd (Purification.purify_rounds f ~rounds:r)
  in
  let r1 = rate_for 0.9 and r2 = rate_for 0.95 and r3 = rate_for 0.98 in
  check_bool "0.9 -> 0.95 costs" true (r2 <= r1);
  check_bool "0.95 -> 0.98 costs" true (r3 <= r2)

let () =
  Alcotest.run "purification"
    [
      ( "recurrence",
        [
          Alcotest.test_case "closed form" `Quick test_purify_once_closed_form;
          Alcotest.test_case "fixed points" `Quick test_fixed_points;
          Alcotest.test_case "rounds" `Quick test_purify_rounds;
          Alcotest.test_case "rounds needed" `Quick test_rounds_needed;
        ] );
      ( "plans",
        [
          Alcotest.test_case "channel plan" `Quick test_plan_for_channel;
          Alcotest.test_case "tree rate" `Quick test_effective_tree_rate;
          Alcotest.test_case "threshold monotone" `Quick
            test_monotone_threshold_cost;
        ] );
    ]
