(* Unit tests for Qnet_core.Local_search — tree edge exchange. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let random_network ?(qubits = 2) ?(users = 7) seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:users ~n_switches:20
      ~qubits_per_switch:qubits ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_never_hurts_and_stays_valid () =
  for seed = 1 to 15 do
    let g = random_network seed in
    match Alg_conflict_free.solve g params with
    | None -> ()
    | Some tree ->
        let improved, stats = Local_search.improve g params tree in
        check_bool "rate does not regress" true
          (Ent_tree.rate_neg_log improved
          <= Ent_tree.rate_neg_log tree +. 1e-12);
        check_bool "stats consistent" true
          (stats.Local_search.final_neg_log
          <= stats.Local_search.initial_neg_log +. 1e-12);
        check_bool "still verifies" true
          (Verify.is_valid g params ~users:(Graph.users g) improved)
  done

let test_improves_a_bad_seed_tree () =
  (* Feed Algorithm 3 a deliberately bad seed (the E-Q-CAST chain) so
     local search has something to fix. *)
  let g = random_network ~qubits:6 3 in
  match Qnet_baselines.Eqcast.solve g params with
  | None -> ()
  | Some chain ->
      let improved, stats = Local_search.improve g params chain in
      check_bool "chain improved or kept" true
        (Ent_tree.rate_neg_log improved
        <= Ent_tree.rate_neg_log chain +. 1e-12);
      (* On this seed the chain is strictly suboptimal. *)
      check_bool "strict improvement happened" true
        (stats.Local_search.exchanges > 0
        && Ent_tree.rate_neg_log improved < Ent_tree.rate_neg_log chain)

let test_fixed_point_of_optimal () =
  (* Under ample capacity Algorithm 2's tree is optimal: local search
     must accept no exchange. *)
  for seed = 1 to 8 do
    let g = random_network ~qubits:20 (20 + seed) in
    match Alg_optimal.solve g params with
    | None -> ()
    | Some tree ->
        let improved, stats = Local_search.improve g params tree in
        check_int "no exchanges on the optimum" 0 stats.Local_search.exchanges;
        Alcotest.(check (float 1e-12))
          "rate unchanged"
          (Ent_tree.rate_neg_log tree)
          (Ent_tree.rate_neg_log improved)
  done

let test_solve_wrapper () =
  let g = random_network 5 in
  match (Alg_conflict_free.solve g params, Local_search.solve g params) with
  | Some t3, Some ls ->
      check_bool "wrapper at least as good" true
        (Ent_tree.rate_neg_log ls <= Ent_tree.rate_neg_log t3 +. 1e-12)
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility must agree"

let test_rejects_invalid_tree () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0. in
  let s = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 s 1000.);
  ignore (Graph.Builder.add_edge b s u1 1000.);
  let g = Graph.Builder.freeze b in
  let c = Channel.make_exn g params [ u0; s; u1 ] in
  Alcotest.check_raises "overcommitted input"
    (Invalid_argument "Local_search.improve: tree exceeds switch budgets")
    (fun () -> ignore (Local_search.improve g params (Ent_tree.of_channels [ c; c ])))

let test_max_rounds_respected () =
  let g = random_network 9 in
  match Alg_conflict_free.solve g params with
  | None -> ()
  | Some tree ->
      let _, stats = Local_search.improve ~max_rounds:1 g params tree in
      check_bool "at most one round" true (stats.Local_search.iterations <= 1)

let () =
  Alcotest.run "local_search"
    [
      ( "exchange",
        [
          Alcotest.test_case "never hurts" `Quick
            test_never_hurts_and_stays_valid;
          Alcotest.test_case "improves bad seed" `Quick
            test_improves_a_bad_seed_tree;
          Alcotest.test_case "optimal is a fixed point" `Quick
            test_fixed_point_of_optimal;
          Alcotest.test_case "solve wrapper" `Quick test_solve_wrapper;
          Alcotest.test_case "invalid input" `Quick test_rejects_invalid_tree;
          Alcotest.test_case "max rounds" `Quick test_max_rounds_respected;
        ] );
    ]
