(* Unit tests for Qnet_core.Exact — the brute-force ground truth. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let test_prufer_counts () =
  (* Cayley's formula: k^(k-2) labelled trees. *)
  List.iter
    (fun (k, expected) ->
      check_int
        (Printf.sprintf "%d vertices" k)
        expected
        (List.length (Exact.prufer_trees k)))
    [ (0, 1); (1, 1); (2, 1); (3, 3); (4, 16); (5, 125) ]

let test_prufer_trees_are_trees () =
  List.iter
    (fun shape ->
      check_int "4 vertices, 3 edges" 3 (List.length shape);
      let uf = Qnet_graph.Union_find.create 4 in
      List.iter
        (fun (a, b) ->
          check_bool "acyclic" true (Qnet_graph.Union_find.union uf a b))
        shape;
      check_int "connected" 1 (Qnet_graph.Union_find.count_sets uf))
    (Exact.prufer_trees 4)

let test_prufer_trees_distinct () =
  let canon shape = List.sort compare shape in
  let all = List.map canon (Exact.prufer_trees 5) in
  check_int "all distinct" 125 (List.length (List.sort_uniq compare all))

let test_prufer_guard () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Exact.prufer_trees: k too large") (fun () ->
      ignore (Exact.prufer_trees 8));
  Alcotest.check_raises "negative"
    (Invalid_argument "Exact.prufer_trees: negative k") (fun () ->
      ignore (Exact.prufer_trees (-1)))

let test_all_simple_paths () =
  (* Diamond with switch interiors: u0 - {s2 | s3} - u1. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2. ~y:0. in
  let s2 = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1. ~y:1. in
  let s3 = Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1. ~y:(-1.) in
  ignore (Graph.Builder.add_edge b u0 s2 1.);
  ignore (Graph.Builder.add_edge b s2 u1 1.);
  ignore (Graph.Builder.add_edge b u0 s3 1.);
  ignore (Graph.Builder.add_edge b s3 u1 1.);
  ignore (Graph.Builder.add_edge b s2 s3 1.);
  let g = Graph.Builder.freeze b in
  let paths = Exact.all_simple_paths g ~src:u0 ~dst:u1 ~max_hops:4 in
  (* u0-s2-u1, u0-s3-u1, u0-s2-s3-u1, u0-s3-s2-u1. *)
  check_int "four switch-interior paths" 4 (List.length paths);
  List.iter
    (fun p -> check_bool "simple" true (Qnet_graph.Paths.path_is_valid g p))
    paths;
  let short = Exact.all_simple_paths g ~src:u0 ~dst:u1 ~max_hops:2 in
  check_int "hop bound respected" 2 (List.length short)

let test_paths_avoid_users () =
  (* u0 - u2 - u1 line: no u0..u1 path exists through user u2. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2. ~y:0. in
  let u2 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (Graph.Builder.add_edge b u0 u2 1.);
  ignore (Graph.Builder.add_edge b u2 u1 1.);
  let g = Graph.Builder.freeze b in
  check_int "no path through user" 0
    (List.length (Exact.all_simple_paths g ~src:u0 ~dst:u1 ~max_hops:5))

let test_solve_respects_capacity () =
  for seed = 1 to 5 do
    let rng = Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:4 ~n_switches:6 ~avg_degree:4.
        ~qubits_per_switch:2 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match Exact.solve g params with
    | None -> ()
    | Some tree ->
        check_bool "spans" true (Ent_tree.spans_users tree (Graph.users g));
        List.iter
          (fun (s, used) ->
            check_bool "capacity" true (used <= Graph.qubits g s))
          (Ent_tree.qubit_usage tree)
  done

let test_solve_beats_or_ties_heuristics () =
  for seed = 1 to 8 do
    let rng = Prng.create (40 + seed) in
    let spec =
      Qnet_topology.Spec.create ~n_users:4 ~n_switches:7 ~avg_degree:4.
        ~qubits_per_switch:2 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match Exact.solve g params with
    | None ->
        (* If brute force finds nothing (within its hop bound), the
           capacity-respecting heuristics should rarely find a short
           solution; when they do it's within longer hops — skip. *)
        ()
    | Some te ->
        List.iter
          (fun heuristic ->
            match heuristic g params with
            | None -> ()
            | Some th ->
                check_bool "exact >= heuristic" true
                  (Ent_tree.rate_neg_log te
                  <= Ent_tree.rate_neg_log th +. 1e-9))
          [
            (fun g p -> Alg_conflict_free.solve g p);
            (fun g p -> Alg_prim.solve g p);
          ]
  done

let test_five_user_optimality () =
  (* Branch-and-bound makes 5-user instances (125 tree shapes) cheap;
     verify Theorem 3 at that scale too. *)
  for seed = 1 to 4 do
    let rng = Prng.create (70 + seed) in
    let spec =
      Qnet_topology.Spec.create ~n_users:5 ~n_switches:9 ~avg_degree:4.
        ~qubits_per_switch:10 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match (Alg_optimal.solve g params, Exact.solve g params) with
    | Some t2, Some te ->
        Alcotest.(check (float 1e-9))
          "alg2 = optimum at |U| = 5"
          (Ent_tree.rate_neg_log te) (Ent_tree.rate_neg_log t2)
    | None, None -> ()
    | _ -> Alcotest.fail "feasibility disagreement"
  done

let test_bounds_guard () =
  let rng = Prng.create 1 in
  let spec = Qnet_topology.Spec.create ~n_users:10 ~n_switches:50 () in
  let g = Qnet_topology.Waxman.generate rng spec in
  Alcotest.check_raises "too many users"
    (Invalid_argument "Exact.solve: too many users") (fun () ->
      ignore (Exact.solve g params))

let test_single_user () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  match Exact.solve g params with
  | Some tree -> check_int "empty" 0 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "trivial"

let () =
  Alcotest.run "exact"
    [
      ( "prufer",
        [
          Alcotest.test_case "cayley counts" `Quick test_prufer_counts;
          Alcotest.test_case "valid trees" `Quick test_prufer_trees_are_trees;
          Alcotest.test_case "distinct" `Quick test_prufer_trees_distinct;
          Alcotest.test_case "guards" `Quick test_prufer_guard;
        ] );
      ( "paths",
        [
          Alcotest.test_case "enumeration" `Quick test_all_simple_paths;
          Alcotest.test_case "avoid users" `Quick test_paths_avoid_users;
        ] );
      ( "solve",
        [
          Alcotest.test_case "capacity" `Quick test_solve_respects_capacity;
          Alcotest.test_case "dominates heuristics" `Quick
            test_solve_beats_or_ties_heuristics;
          Alcotest.test_case "five users" `Slow test_five_user_optimality;
          Alcotest.test_case "bounds guard" `Quick test_bounds_guard;
          Alcotest.test_case "single user" `Quick test_single_user;
        ] );
    ]
