(* Unit tests for Qnet_core.Params. *)

module Params = Qnet_core.Params

let feq = Alcotest.(check (float 1e-12))

let test_defaults () =
  feq "alpha" 1e-4 Params.default.Params.alpha;
  feq "q" 0.9 Params.default.Params.q

let test_create_overrides () =
  let p = Params.create ~alpha:2e-4 ~q:0.5 () in
  feq "alpha override" 2e-4 p.Params.alpha;
  feq "q override" 0.5 p.Params.q

let test_create_invalid () =
  Alcotest.check_raises "negative alpha"
    (Invalid_argument "Params.create: alpha must be >= 0") (fun () ->
      ignore (Params.create ~alpha:(-1.) ()));
  Alcotest.check_raises "q above 1"
    (Invalid_argument "Params.create: q must lie in [0, 1]") (fun () ->
      ignore (Params.create ~q:1.5 ()));
  Alcotest.check_raises "q below 0"
    (Invalid_argument "Params.create: q must lie in [0, 1]") (fun () ->
      ignore (Params.create ~q:(-0.1) ()))

let test_link_success () =
  let p = Params.create ~alpha:1e-4 () in
  feq "zero length" 1. (Params.link_success p 0.);
  feq "e^-1 at 10k" (exp (-1.)) (Params.link_success p 10_000.);
  (* Paper's formula p = exp(-alpha L) at a typical 1000-unit fiber. *)
  feq "typical fiber" (exp (-0.1)) (Params.link_success p 1_000.)

let test_link_neg_log () =
  let p = Params.create ~alpha:1e-4 () in
  feq "alpha * L" 0.5 (Params.link_neg_log p 5_000.);
  feq "consistency with link_success" (Params.link_neg_log p 777.)
    (-.log (Params.link_success p 777.))

let test_swap_neg_log () =
  let p = Params.create ~q:0.9 () in
  feq "-ln q" (-.log 0.9) (Params.swap_neg_log p);
  let p1 = Params.create ~q:1. () in
  feq "perfect swaps cost nothing" 0. (Params.swap_neg_log p1);
  let p0 = Params.create ~q:0. () in
  Alcotest.(check bool)
    "q=0 is infinite cost" true
    (Params.swap_neg_log p0 = infinity)

let () =
  Alcotest.run "params"
    [
      ( "construction",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "overrides" `Quick test_create_overrides;
          Alcotest.test_case "invalid" `Quick test_create_invalid;
        ] );
      ( "model",
        [
          Alcotest.test_case "link success" `Quick test_link_success;
          Alcotest.test_case "link neg log" `Quick test_link_neg_log;
          Alcotest.test_case "swap neg log" `Quick test_swap_neg_log;
        ] );
    ]
