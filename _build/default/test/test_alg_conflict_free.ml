(* Unit tests for Qnet_core.Alg_conflict_free — Algorithm 3. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

(* The conflict fixture: three users around a 4-qubit hub (2 channels
   max), plus an expensive ring of relay switches giving an alternate
   route between each user pair. *)
let conflict_fixture () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let switch q x y =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:q ~x ~y
  in
  let u0 = user 0. 0. in
  let u1 = user 4000. 0. in
  let u2 = user 2000. 3400. in
  let hub = switch 4 2000. 1100. in
  let r01 = switch 4 2000. (-800.) in
  let r12 = switch 4 3300. 2000. in
  ignore (Graph.Builder.add_edge b u0 hub 2300.);
  ignore (Graph.Builder.add_edge b u1 hub 2300.);
  ignore (Graph.Builder.add_edge b u2 hub 2300.);
  ignore (Graph.Builder.add_edge b u0 r01 2200.);
  ignore (Graph.Builder.add_edge b u1 r01 2200.);
  ignore (Graph.Builder.add_edge b u1 r12 2400.);
  ignore (Graph.Builder.add_edge b u2 r12 2400.);
  (Graph.Builder.freeze b, u0, u1, u2, hub, r01, r12)

let test_respects_capacity_on_conflict () =
  let g, u0, u1, u2, hub, _, _ = conflict_fixture () in
  match Alg_conflict_free.solve g params with
  | None -> Alcotest.fail "alternate routes exist; must be feasible"
  | Some tree ->
      check_bool "spans users" true
        (Ent_tree.spans_users tree [ u0; u1; u2 ]);
      let usage = Ent_tree.qubit_usage tree in
      List.iter
        (fun (s, used) ->
          check_bool
            (Printf.sprintf "switch %d within budget" s)
            true
            (used <= Graph.qubits g s))
        usage;
      (* The hub can only carry two of its qubit-pairs. *)
      check_bool "hub not over 4" true
        (match List.assoc_opt hub usage with None -> true | Some u -> u <= 4)

let test_equals_alg2_when_no_conflict () =
  for seed = 1 to 10 do
    let rng = Prng.create seed in
    let spec =
      Qnet_topology.Spec.create ~n_users:5 ~n_switches:20
        ~qubits_per_switch:10 ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match (Alg_optimal.solve g params, Alg_conflict_free.solve g params) with
    | Some t2, Some t3 ->
        Alcotest.(check (float 1e-9))
          "no conflicts -> same rate"
          (Ent_tree.rate_neg_log t2) (Ent_tree.rate_neg_log t3)
    | _ -> Alcotest.fail "both should solve under ample capacity"
  done

let test_never_beats_alg2_rate () =
  (* Algorithm 2 ignores capacity, so its rate upper-bounds Algorithm
     3's on the same instance. *)
  for seed = 1 to 15 do
    let rng = Prng.create (50 + seed) in
    let spec =
      Qnet_topology.Spec.create ~n_users:8 ~n_switches:20 ~qubits_per_switch:2
        ()
    in
    let g = Qnet_topology.Waxman.generate rng spec in
    match (Alg_optimal.solve g params, Alg_conflict_free.solve g params) with
    | Some t2, Some t3 ->
        check_bool "alg3 <= alg2" true
          (Ent_tree.rate_neg_log t3 >= Ent_tree.rate_neg_log t2 -. 1e-9)
    | _, None | None, _ -> ()
  done

let test_infeasible_when_capacity_gone () =
  (* Single 2-qubit hub between three users and no alternates: only one
     channel fits, so three users cannot be spanned. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let u2 = user 1000. 1700. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u0 hub 1100.);
  ignore (Graph.Builder.add_edge b u1 hub 1100.);
  ignore (Graph.Builder.add_edge b u2 hub 1100.);
  let g = Graph.Builder.freeze b in
  check_bool "Fig. 4(b) instance infeasible" true
    (Alg_conflict_free.solve g params = None);
  ignore (u0, u1, u2)

let test_seed_channels_override () =
  let g, u0, u1, u2, _, r01, r12 = conflict_fixture () in
  (* Seed with deliberately bad relay channels; phase 1 keeps them (no
     conflicts among them), so the result uses exactly those. *)
  let seed =
    [
      Channel.make_exn g params [ u0; r01; u1 ];
      Channel.make_exn g params [ u1; r12; u2 ];
    ]
  in
  match Alg_conflict_free.solve ~seed_channels:seed g params with
  | None -> Alcotest.fail "seeded solve should succeed"
  | Some tree ->
      check_int "two channels" 2 (Ent_tree.channel_count tree);
      check_bool "keeps the seeded relay channels" true
        (List.for_all
           (fun (c : Channel.t) ->
             List.exists (Channel.equal c) seed)
           tree.Ent_tree.channels)

let test_empty_seed_reconnects_everything () =
  let g, u0, u1, u2, _, _, _ = conflict_fixture () in
  match Alg_conflict_free.solve ~seed_channels:[] g params with
  | None -> Alcotest.fail "reconnection phase alone should span the users"
  | Some tree ->
      check_bool "spans" true (Ent_tree.spans_users tree [ u0; u1; u2 ])

let test_single_user_trivial () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  match Alg_conflict_free.solve g params with
  | Some tree -> check_int "empty tree" 0 (Ent_tree.channel_count tree)
  | None -> Alcotest.fail "trivial"

let () =
  Alcotest.run "alg_conflict_free"
    [
      ( "conflicts",
        [
          Alcotest.test_case "respects capacity" `Quick
            test_respects_capacity_on_conflict;
          Alcotest.test_case "infeasible hub" `Quick
            test_infeasible_when_capacity_gone;
        ] );
      ( "relation to alg2",
        [
          Alcotest.test_case "equal without conflicts" `Quick
            test_equals_alg2_when_no_conflict;
          Alcotest.test_case "never beats alg2" `Quick
            test_never_beats_alg2_rate;
        ] );
      ( "api",
        [
          Alcotest.test_case "seed override" `Quick test_seed_channels_override;
          Alcotest.test_case "empty seed" `Quick
            test_empty_seed_reconnects_everything;
          Alcotest.test_case "single user" `Quick test_single_user_trivial;
        ] );
    ]
