(* Unit tests for Qnet_util.Logprob. *)

module Logprob = Qnet_util.Logprob

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)

let test_roundtrip () =
  List.iter
    (fun p -> feq (Printf.sprintf "roundtrip %g" p) p
        (Logprob.to_prob (Logprob.of_prob p)))
    [ 1.; 0.5; 0.25; 1e-10; 0. ]

let test_certain_impossible () =
  feq "certain is probability 1" 1. (Logprob.to_prob Logprob.certain);
  feq "impossible is probability 0" 0. (Logprob.to_prob Logprob.impossible);
  check_bool "impossible flag" true (Logprob.is_impossible Logprob.impossible);
  check_bool "certain is not impossible" false
    (Logprob.is_impossible Logprob.certain);
  check_bool "of_prob 0 is impossible" true
    (Logprob.is_impossible (Logprob.of_prob 0.))

let test_of_prob_invalid () =
  List.iter
    (fun p ->
      Alcotest.check_raises "invalid probability"
        (Invalid_argument "Logprob.of_prob: probability outside [0, 1]")
        (fun () -> ignore (Logprob.of_prob p)))
    [ -0.1; 1.1; Float.nan ]

let test_of_neg_log () =
  feq "neg log 0 = prob 1" 1. (Logprob.to_prob (Logprob.of_neg_log 0.));
  feq "raw accessor" 2.5 (Logprob.to_neg_log (Logprob.of_neg_log 2.5));
  Alcotest.check_raises "negative input"
    (Invalid_argument
       "Logprob.of_neg_log: negative log-probability must be >= 0") (fun () ->
      ignore (Logprob.of_neg_log (-1.)))

let test_mul () =
  let half = Logprob.of_prob 0.5 in
  feq "0.5 * 0.5" 0.25 (Logprob.to_prob (Logprob.mul half half));
  feq "x * certain = x" 0.5
    (Logprob.to_prob (Logprob.mul half Logprob.certain));
  check_bool "x * impossible = impossible" true
    (Logprob.is_impossible (Logprob.mul half Logprob.impossible));
  check_bool "impossible * impossible" true
    (Logprob.is_impossible (Logprob.mul Logprob.impossible Logprob.impossible))

let test_mul_extreme_underflow () =
  (* 1000 factors of 0.5: prob underflows to 0. in float space, but the
     neg-log representation keeps full precision. *)
  let half = Logprob.of_prob 0.5 in
  let product =
    List.fold_left
      (fun acc _ -> Logprob.mul acc half)
      Logprob.certain
      (List.init 2000 (fun i -> i))
  in
  check_bool "not confused with impossible" false
    (Logprob.is_impossible product);
  Alcotest.(check (float 1e-9))
    "exact neg-log" (2000. *. log 2.) (Logprob.to_neg_log product)

let test_pow () =
  let half = Logprob.of_prob 0.5 in
  feq "pow 3" 0.125 (Logprob.to_prob (Logprob.pow half 3));
  feq "pow 0 = certain" 1. (Logprob.to_prob (Logprob.pow half 0));
  feq "pow 0 of impossible = certain" 1.
    (Logprob.to_prob (Logprob.pow Logprob.impossible 0));
  check_bool "pow of impossible" true
    (Logprob.is_impossible (Logprob.pow Logprob.impossible 2));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Logprob.pow: negative exponent") (fun () ->
      ignore (Logprob.pow half (-1)))

let test_compare () =
  let high = Logprob.of_prob 0.9 and low = Logprob.of_prob 0.1 in
  check_bool "desc: larger prob first" true (Logprob.compare_desc high low < 0);
  check_bool "asc: smaller prob first" true (Logprob.compare_asc low high < 0);
  Alcotest.(check int) "equal" 0 (Logprob.compare_desc high high);
  check_bool "impossible sorts last in desc" true
    (Logprob.compare_desc high Logprob.impossible < 0);
  check_bool "equal api" true (Logprob.equal high (Logprob.of_prob 0.9))

let test_sort_order () =
  let probs = [ 0.3; 0.9; 0.; 0.5; 1. ] in
  let sorted =
    List.map Logprob.of_prob probs
    |> List.sort Logprob.compare_desc
    |> List.map Logprob.to_prob
  in
  Alcotest.(check (list (float 1e-12)))
    "descending probability" [ 1.; 0.9; 0.5; 0.3; 0. ] sorted

let () =
  Alcotest.run "logprob"
    [
      ( "conversion",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "extremes" `Quick test_certain_impossible;
          Alcotest.test_case "invalid of_prob" `Quick test_of_prob_invalid;
          Alcotest.test_case "of_neg_log" `Quick test_of_neg_log;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "underflow resistance" `Quick
            test_mul_extreme_underflow;
          Alcotest.test_case "pow" `Quick test_pow;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "sort" `Quick test_sort_order;
        ] );
    ]
