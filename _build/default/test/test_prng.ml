(* Unit tests for Qnet_util.Prng. *)

module Prng = Qnet_util.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      distinct := true
  done;
  check "different seeds diverge" true !distinct

let test_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let va = Prng.next_int64 a in
  let vb = Prng.next_int64 b in
  Alcotest.(check int64) "copy continues from the same state" va vb;
  ignore (Prng.next_int64 a);
  let va2 = Prng.next_int64 a and vb2 = Prng.next_int64 b in
  check "streams then diverge by position" false (Int64.equal va2 vb2)

let test_split_diverges () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Prng.next_int64 parent) (Prng.next_int64 child) then
      incr same
  done;
  check "split stream is distinct" true (!same < 5)

let test_int_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    check "int in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_covers_all_residues () =
  let rng = Prng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 5) <- true
  done;
  Array.iteri (fun i b -> check (Printf.sprintf "residue %d seen" i) true b) seen

let test_int_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in_range rng ~min:(-5) ~max:5 in
    check "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  check_int "degenerate range" 9 (Prng.int_in_range rng ~min:9 ~max:9)

let test_float_bounds () =
  let rng = Prng.create 17 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 3.5 in
    check "float in [0,3.5)" true (v >= 0. && v < 3.5)
  done

let test_float_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Prng.float: bound must be positive and finite")
    (fun () -> ignore (Prng.float rng (-1.)))

let test_float_mean () =
  let rng = Prng.create 23 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng 1.
  done;
  let mean = !sum /. float_of_int n in
  check "uniform mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let rng = Prng.create 29 in
  for _ = 1 to 100 do
    check "p=1 always true" true (Prng.bernoulli rng 1.);
    check "p=0 always false" false (Prng.bernoulli rng 0.);
    check "p>1 clamps to true" true (Prng.bernoulli rng 2.);
    check "p<0 clamps to false" false (Prng.bernoulli rng (-0.5))
  done

let test_bernoulli_frequency () =
  let rng = Prng.create 31 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check "frequency near 0.3" true (Float.abs (freq -. 0.3) < 0.01)

let test_bool_balanced () =
  let rng = Prng.create 37 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bool rng then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check "bool near fair" true (Float.abs (freq -. 0.5) < 0.01)

let test_shuffle_is_permutation () =
  let rng = Prng.create 41 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 (fun i -> i)) sorted

let test_shuffle_moves_something () =
  let rng = Prng.create 43 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle_in_place rng a;
  check "not identity" true (Array.exists (fun _ -> true) a && a <> Array.init 100 (fun i -> i))

let test_pick () =
  let rng = Prng.create 47 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check "pick from array" true (Array.mem (Prng.pick rng a) a)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick rng [||]))

let test_sample_without_replacement () =
  let rng = Prng.create 53 in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement rng 5 20 in
    check_int "five samples" 5 (List.length s);
    check_int "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> check "in range" true (v >= 0 && v < 20)) s
  done;
  check_int "k = n is a permutation" 10
    (List.length (Prng.sample_without_replacement rng 10 10));
  Alcotest.check_raises "k > n" (Invalid_argument "Prng.sample_without_replacement")
    (fun () -> ignore (Prng.sample_without_replacement rng 5 3))

let test_exponential () =
  let rng = Prng.create 59 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Prng.exponential rng 2. in
    check "positive" true (v >= 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check "mean near 1/lambda" true (Float.abs (mean -. 0.5) < 0.02);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Prng.exponential: rate must be positive") (fun () ->
      ignore (Prng.exponential rng 0.))

let () =
  Alcotest.run "prng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
        ] );
      ( "int",
        [
          Alcotest.test_case "bounds" `Quick test_int_bounds;
          Alcotest.test_case "covers residues" `Quick test_int_covers_all_residues;
          Alcotest.test_case "invalid" `Quick test_int_invalid;
          Alcotest.test_case "range" `Quick test_int_in_range;
        ] );
      ( "float",
        [
          Alcotest.test_case "bounds" `Quick test_float_bounds;
          Alcotest.test_case "invalid" `Quick test_float_invalid;
          Alcotest.test_case "mean" `Quick test_float_mean;
        ] );
      ( "bernoulli",
        [
          Alcotest.test_case "extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "frequency" `Quick test_bernoulli_frequency;
          Alcotest.test_case "bool" `Quick test_bool_balanced;
        ] );
      ( "collections",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "distributions",
        [ Alcotest.test_case "exponential" `Quick test_exponential ] );
    ]
