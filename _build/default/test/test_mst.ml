(* Unit tests for Qnet_graph.Mst. *)

module Graph = Qnet_graph.Graph
module Mst = Qnet_graph.Mst

let weight (e : Graph.edge) = e.Graph.length
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Classic 4-cycle with a chord; MST weight is 1+2+3 = 6. *)
let square () =
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let v0 = add () and v1 = add () and v2 = add () and v3 = add () in
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  ignore (Graph.Builder.add_edge b v1 v2 2.);
  ignore (Graph.Builder.add_edge b v2 v3 3.);
  ignore (Graph.Builder.add_edge b v3 v0 4.);
  ignore (Graph.Builder.add_edge b v0 v2 5.);
  Graph.Builder.freeze b

let test_kruskal () =
  let g = square () in
  let tree = Mst.kruskal g ~weight in
  check_int "n-1 edges" 3 (List.length tree);
  Alcotest.(check (float 1e-9)) "weight" 6. (Mst.total_weight ~weight tree);
  check_bool "spanning" true (Mst.is_spanning_tree g tree)

let test_prim_matches_kruskal () =
  let g = square () in
  let k = Mst.total_weight ~weight (Mst.kruskal g ~weight) in
  for root = 0 to 3 do
    let p = Mst.total_weight ~weight (Mst.prim g ~weight ~root) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "prim from %d" root)
      k p
  done

let test_disconnected_forest () =
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let v0 = add () and v1 = add () in
  let v2 = add () and v3 = add () in
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  ignore (Graph.Builder.add_edge b v2 v3 2.);
  let g = Graph.Builder.freeze b in
  let forest = Mst.kruskal g ~weight in
  check_int "forest has 2 edges" 2 (List.length forest);
  check_bool "not a spanning tree" false (Mst.is_spanning_tree g forest);
  (* Prim only covers the root's component. *)
  check_int "prim covers one component" 1
    (List.length (Mst.prim g ~weight ~root:v0))

let test_prim_bad_root () =
  let g = square () in
  Alcotest.check_raises "bad root" (Invalid_argument "Mst.prim: bad root")
    (fun () -> ignore (Mst.prim g ~weight ~root:9))

let test_is_spanning_tree_rejects_cycle () =
  let g = square () in
  let all = Graph.fold_edges g ~init:[] ~f:(fun acc e -> e :: acc) in
  check_bool "all edges form cycles" false (Mst.is_spanning_tree g all);
  (* Right count but with a cycle: edges 0-1, 1-2, 0-2. *)
  let by_ends a b =
    List.find
      (fun (e : Graph.edge) -> (e.Graph.a, e.Graph.b) = (min a b, max a b))
      all
  in
  check_bool "cycle of right size" false
    (Mst.is_spanning_tree g [ by_ends 0 1; by_ends 1 2; by_ends 0 2 ])

let test_singleton_graph () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  Alcotest.(check int) "no edges" 0 (List.length (Mst.kruskal g ~weight));
  check_bool "empty tree spans singleton" true (Mst.is_spanning_tree g [])

let () =
  Alcotest.run "mst"
    [
      ( "algorithms",
        [
          Alcotest.test_case "kruskal" `Quick test_kruskal;
          Alcotest.test_case "prim = kruskal" `Quick test_prim_matches_kruskal;
          Alcotest.test_case "disconnected" `Quick test_disconnected_forest;
          Alcotest.test_case "bad root" `Quick test_prim_bad_root;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects cycles" `Quick
            test_is_spanning_tree_rejects_cycle;
          Alcotest.test_case "singleton" `Quick test_singleton_graph;
        ] );
    ]
