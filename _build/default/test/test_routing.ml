(* Unit tests for Qnet_core.Routing — Algorithm 1. *)

module Graph = Qnet_graph.Graph
open Qnet_core

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let params = Params.create ~alpha:1e-4 ~q:0.9 ()

(* Two parallel relay routes between u0 and u1:
     short:  u0 - s2 - u1          (2 x 1000 units, 1 swap)
     long:   u0 - s3 - s4 - u1     (3 x 1000 units, 2 swaps)
   plus a third user u5 hanging off s4. *)
let fixture () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let switch q x y =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:q ~x ~y
  in
  let u0 = user 0. 0. in
  let u1 = user 2000. 0. in
  let s2 = switch 4 1000. 0. in
  let s3 = switch 4 600. 500. in
  let s4 = switch 4 1400. 500. in
  let u5 = user 1400. 1500. in
  ignore (Graph.Builder.add_edge b u0 s2 1000.);
  ignore (Graph.Builder.add_edge b s2 u1 1000.);
  ignore (Graph.Builder.add_edge b u0 s3 1000.);
  ignore (Graph.Builder.add_edge b s3 s4 1000.);
  ignore (Graph.Builder.add_edge b s4 u1 1000.);
  ignore (Graph.Builder.add_edge b s4 u5 1000.);
  (Graph.Builder.freeze b, u0, u1, s2, s3, s4, u5)

let test_edge_weight () =
  let g, _, _, _, _, _, _ = fixture () in
  let e = Graph.edge g 0 in
  feq "alpha L - ln q" (0.1 -. log 0.9) (Routing.edge_weight params e)

let test_prefers_fewer_swaps () =
  let g, u0, u1, s2, _, _, _ = fixture () in
  let capacity = Capacity.of_graph g in
  match Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 with
  | None -> Alcotest.fail "expected a channel"
  | Some c ->
      Alcotest.(check (list int)) "short route" [ u0; s2; u1 ] c.Channel.path;
      feq "its Eq.1 rate" (0.9 *. exp (-0.2)) (Channel.rate_prob c)

let test_capacity_forces_detour () =
  let g, u0, u1, s2, s3, s4, _ = fixture () in
  let capacity = Capacity.of_graph g in
  (* Exhaust the short switch: two channels drain its 4 qubits. *)
  Capacity.consume_channel capacity [ u0; s2; u1 ];
  Capacity.consume_channel capacity [ u0; s2; u1 ];
  match Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 with
  | None -> Alcotest.fail "detour should exist"
  | Some c ->
      Alcotest.(check (list int))
        "long route" [ u0; s3; s4; u1 ]
        c.Channel.path

let test_no_capacity_no_channel () =
  let g, u0, u1, s2, s3, s4, _ = fixture () in
  let capacity = Capacity.of_graph g in
  Capacity.consume_channel capacity [ u0; s2; u1 ];
  Capacity.consume_channel capacity [ u0; s2; u1 ];
  Capacity.consume_channel capacity [ u0; s3; s4; u1 ];
  Capacity.consume_channel capacity [ u0; s3; s4; u1 ];
  check_bool "all switches drained" true
    (Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 = None)

let test_never_routes_through_users () =
  (* u0 - u1 - u2 in a line: the only u0..u2 route crosses user u1 and
     must be rejected. *)
  let b = Graph.Builder.create () in
  let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
  let u0 = user 0. and u1 = user 1000. and u2 = user 2000. in
  ignore (Graph.Builder.add_edge b u0 u1 1000.);
  ignore (Graph.Builder.add_edge b u1 u2 1000.);
  let g = Graph.Builder.freeze b in
  let capacity = Capacity.of_graph g in
  check_bool "no channel through a user" true
    (Routing.best_channel g params ~capacity ~src:u0 ~dst:u2 = None);
  (* But the direct neighbours are fine. *)
  check_bool "direct neighbour channel" true
    (Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 <> None)

let test_static_low_qubit_switch_excluded () =
  (* Algorithm 1 line 11: a switch with fewer than 2 qubits never
     relays. *)
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let s =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:1 ~x:1000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 s 1000.);
  ignore (Graph.Builder.add_edge b s u1 1000.);
  let g = Graph.Builder.freeze b in
  let capacity = Capacity.of_graph g in
  check_bool "1-qubit switch unusable" true
    (Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 = None)

let test_q_zero_direct_only () =
  let g, u0, u1, _, _, _, u5 = fixture () in
  let p0 = Params.create ~alpha:1e-4 ~q:0. () in
  let capacity = Capacity.of_graph g in
  check_bool "no direct fiber, no channel" true
    (Routing.best_channel g p0 ~capacity ~src:u0 ~dst:u1 = None);
  ignore u5;
  (* Add a graph that does have a direct fiber. *)
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let c = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:1. ~y:0. in
  ignore (Graph.Builder.add_edge b a c 1000.);
  let g2 = Graph.Builder.freeze b in
  let cap2 = Capacity.of_graph g2 in
  match Routing.best_channel g2 p0 ~capacity:cap2 ~src:a ~dst:c with
  | None -> Alcotest.fail "direct channel should survive q = 0"
  | Some ch -> feq "direct rate" (exp (-0.1)) (Channel.rate_prob ch)

let test_best_channels_from () =
  let g, u0, u1, _, _, _, u5 = fixture () in
  let capacity = Capacity.of_graph g in
  let all = Routing.best_channels_from g params ~capacity ~src:u0 in
  Alcotest.(check (list int))
    "reaches both other users" [ u1; u5 ]
    (List.map fst all);
  (* Consistency with the single-pair variant. *)
  List.iter
    (fun (dst, (c : Channel.t)) ->
      match Routing.best_channel g params ~capacity ~src:u0 ~dst with
      | None -> Alcotest.fail "pairwise variant disagrees"
      | Some c' ->
          feq "same rate"
            (Channel.rate_prob c')
            (Channel.rate_prob c))
    all

let test_all_pairs_best () =
  let g, u0, u1, _, _, _, u5 = fixture () in
  let capacity = Capacity.of_graph g in
  let cs = Routing.all_pairs_best g params ~capacity ~users:[ u0; u1; u5 ] in
  Alcotest.(check int) "three unordered pairs" 3 (List.length cs);
  let pairs =
    List.sort compare (List.map Channel.endpoints cs)
  in
  Alcotest.(check (list (pair int int)))
    "each pair once"
    [ (u0, u1); (u0, u5); (u1, u5) ]
    pairs

let test_endpoint_validation () =
  let g, u0, _, s2, _, _, _ = fixture () in
  let capacity = Capacity.of_graph g in
  Alcotest.check_raises "switch endpoint"
    (Invalid_argument "Routing: endpoint is not a quantum user") (fun () ->
      ignore (Routing.best_channel g params ~capacity ~src:u0 ~dst:s2));
  Alcotest.check_raises "src = dst"
    (Invalid_argument "Routing.best_channel: src = dst") (fun () ->
      ignore (Routing.best_channel g params ~capacity ~src:u0 ~dst:u0))

let test_channel_is_optimal_vs_exhaustive () =
  (* Cross-check Algorithm 1 against brute-force path enumeration. *)
  let g, u0, u1, _, _, _, _ = fixture () in
  let capacity = Capacity.of_graph g in
  let best =
    match Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 with
    | Some c -> Channel.rate_prob c
    | None -> 0.
  in
  let brute =
    Exact.all_simple_paths g ~src:u0 ~dst:u1 ~max_hops:6
    |> List.map (fun p -> Channel.rate_prob (Channel.make_exn g params p))
    |> List.fold_left Float.max 0.
  in
  feq "matches brute force" brute best

let () =
  Alcotest.run "routing"
    [
      ( "algorithm 1",
        [
          Alcotest.test_case "edge weight" `Quick test_edge_weight;
          Alcotest.test_case "prefers fewer swaps" `Quick
            test_prefers_fewer_swaps;
          Alcotest.test_case "capacity detour" `Quick
            test_capacity_forces_detour;
          Alcotest.test_case "capacity exhausted" `Quick
            test_no_capacity_no_channel;
          Alcotest.test_case "users never relay" `Quick
            test_never_routes_through_users;
          Alcotest.test_case "low-qubit switch" `Quick
            test_static_low_qubit_switch_excluded;
          Alcotest.test_case "q = 0" `Quick test_q_zero_direct_only;
          Alcotest.test_case "optimal vs brute force" `Quick
            test_channel_is_optimal_vs_exhaustive;
        ] );
      ( "fan-out",
        [
          Alcotest.test_case "best_channels_from" `Quick
            test_best_channels_from;
          Alcotest.test_case "all_pairs_best" `Quick test_all_pairs_best;
          Alcotest.test_case "endpoint validation" `Quick
            test_endpoint_validation;
        ] );
    ]
