(* Unit tests for Qnet_core.Fidelity — the Werner-state fidelity-aware
   extension. *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let params = Params.default

let test_werner_swap_closed_form () =
  feq "perfect pairs stay perfect" 1. (Fidelity.werner_swap 1. 1.);
  feq "symmetric" (Fidelity.werner_swap 0.9 0.8) (Fidelity.werner_swap 0.8 0.9);
  (* F' = F1 F2 + (1-F1)(1-F2)/3. *)
  feq "closed form" ((0.9 *. 0.8) +. (0.1 *. 0.2 /. 3.))
    (Fidelity.werner_swap 0.9 0.8);
  (* The maximally mixed fixed point: F = 1/4 maps to 1/4. *)
  feq "mixed fixed point" 0.25 (Fidelity.werner_swap 0.25 0.25);
  Alcotest.check_raises "range check"
    (Invalid_argument "Fidelity.werner_swap: fidelity outside [0, 1]")
    (fun () -> ignore (Fidelity.werner_swap 1.2 0.5))

let test_channel_fidelity_monotone () =
  let f0 = 0.97 in
  feq "single hop is f0" f0 (Fidelity.channel_fidelity ~f0 ~hops:1);
  let rec check_decreasing prev h =
    if h <= 12 then begin
      let f = Fidelity.channel_fidelity ~f0 ~hops:h in
      check_bool (Printf.sprintf "hop %d decays" h) true (f < prev);
      check_bool "stays above mixed floor" true (f > 0.25);
      check_decreasing f (h + 1)
    end
  in
  check_decreasing (f0 +. 1e-12) 2;
  Alcotest.check_raises "hops >= 1"
    (Invalid_argument "Fidelity.channel_fidelity: hops < 1") (fun () ->
      ignore (Fidelity.channel_fidelity ~f0 ~hops:0))

let test_max_hops () =
  let f0 = 0.98 in
  (match Fidelity.max_hops ~f0 ~threshold:0.9 ~max_considered:64 with
  | None -> Alcotest.fail "budget must exist"
  | Some h ->
      check_bool "budget meets threshold" true
        (Fidelity.channel_fidelity ~f0 ~hops:h >= 0.9);
      check_bool "budget is maximal" true
        (Fidelity.channel_fidelity ~f0 ~hops:(h + 1) < 0.9));
  check_bool "impossible threshold" true
    (Fidelity.max_hops ~f0:0.8 ~threshold:0.9 ~max_considered:64 = None);
  Alcotest.(check (option int))
    "threshold at f0 allows exactly 1 hop" (Some 1)
    (Fidelity.max_hops ~f0:0.9 ~threshold:0.9 ~max_considered:64)

(* Fixture: a 2-hop route and a 4-hop route between u0 and u1, where the
   4-hop route has shorter total fiber (higher rate) but worse
   fidelity. *)
let two_route_fixture () =
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y in
  let switch x y =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y
  in
  let u0 = user 0. 0. in
  let u1 = user 8000. 0. in
  let s_mid = switch 4000. 3000. in
  (* Long 2-hop route: 2 x 5000 units. *)
  ignore (Graph.Builder.add_edge b u0 s_mid 5000.);
  ignore (Graph.Builder.add_edge b s_mid u1 5000.);
  (* Short 4-hop route: 4 x 2000 units. *)
  let s1 = switch 2000. 0. in
  let s2 = switch 4000. 0. in
  let s3 = switch 6000. 0. in
  ignore (Graph.Builder.add_edge b u0 s1 2000.);
  ignore (Graph.Builder.add_edge b s1 s2 2000.);
  ignore (Graph.Builder.add_edge b s2 s3 2000.);
  ignore (Graph.Builder.add_edge b s3 u1 2000.);
  (Graph.Builder.freeze b, u0, u1)

let test_bounded_channel_respects_hop_budget () =
  let g, u0, u1 = two_route_fixture () in
  let capacity = Capacity.of_graph g in
  (* Unbounded (= large bound): the 4-hop route wins on rate
     (e^-0.8 q^3 = 0.327 vs e^-1.0 q^1 = 0.331... compute: 4 hops:
     exp(-0.8)*0.9^3 = 0.4493*0.729 = 0.3276; 2 hops: exp(-1.0)*0.9 =
     0.3311 — actually the 2-hop wins slightly).  Make the comparison
     robust by checking against Algorithm 1 directly. *)
  let unbounded =
    match Routing.best_channel g params ~capacity ~src:u0 ~dst:u1 with
    | Some c -> c
    | None -> Alcotest.fail "route exists"
  in
  (match
     Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:10
   with
  | None -> Alcotest.fail "bounded route exists"
  | Some c ->
      feq "large bound matches Algorithm 1"
        (Channel.rate_prob unbounded)
        (Channel.rate_prob c));
  (* Bound of 2: must pick the 2-hop route even if rates said
     otherwise. *)
  (match
     Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:2
   with
  | None -> Alcotest.fail "2-hop route exists"
  | Some c -> check_int "two links" 2 c.Channel.hops);
  (* Bound of 1: no direct fiber, so nothing. *)
  check_bool "no 1-hop route" true
    (Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:1
    = None)

let test_bounded_respects_capacity () =
  let g, u0, u1 = two_route_fixture () in
  let capacity = Capacity.of_graph g in
  (* Drain the 2-hop route's switch. *)
  (match
     Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:2
   with
  | Some c ->
      Capacity.consume_channel capacity c.Channel.path;
      Capacity.consume_channel capacity c.Channel.path
  | None -> Alcotest.fail "fixture");
  check_bool "2-hop exhausted" true
    (Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:2
    = None);
  check_bool "4-hop still available" true
    (Fidelity.best_channel_bounded g params ~capacity ~src:u0 ~dst:u1
       ~max_hops:4
    <> None)

let random_network seed =
  let rng = Prng.create seed in
  let spec =
    Qnet_topology.Spec.create ~n_users:6 ~n_switches:20 ~qubits_per_switch:4 ()
  in
  Qnet_topology.Waxman.generate rng spec

let test_solvers_meet_threshold () =
  let config = { Fidelity.f0 = 0.98; threshold = 0.92 } in
  for seed = 1 to 10 do
    let g = random_network seed in
    List.iter
      (fun (name, solve) ->
        match solve g params config with
        | None -> ()
        | Some tree ->
            check_bool (name ^ " verifies") true
              (Verify.is_valid g params ~users:(Graph.users g) tree);
            check_bool (name ^ " meets threshold") true
              (Fidelity.tree_min_fidelity ~f0:config.Fidelity.f0 tree
              >= config.Fidelity.threshold))
      [
        ("kruskal", Fidelity.solve_kruskal);
        ("prim", fun g p c -> Fidelity.solve_prim g p c);
      ]
  done

let test_threshold_never_helps_rate () =
  (* Adding a fidelity constraint can only reduce the achievable rate. *)
  for seed = 1 to 8 do
    let g = random_network (30 + seed) in
    let unconstrained =
      match Alg_conflict_free.solve g params with
      | None -> 0.
      | Some t -> Ent_tree.rate_prob t
    in
    let constrained =
      match
        Fidelity.solve_kruskal g params { Fidelity.f0 = 0.98; threshold = 0.95 }
      with
      | None -> 0.
      | Some t -> Ent_tree.rate_prob t
    in
    check_bool "constraint costs rate" true
      (constrained <= unconstrained +. 1e-9)
  done

let test_infeasible_threshold () =
  let g = random_network 3 in
  check_bool "impossible threshold -> None" true
    (Fidelity.solve_kruskal g params { Fidelity.f0 = 0.8; threshold = 0.95 }
    = None);
  check_bool "prim agrees" true
    (Fidelity.solve_prim g params { Fidelity.f0 = 0.8; threshold = 0.95 }
    = None)

let test_tree_min_fidelity_empty () =
  feq "empty tree" 1.
    (Fidelity.tree_min_fidelity ~f0:0.9 (Ent_tree.of_channels []))

let () =
  Alcotest.run "fidelity"
    [
      ( "model",
        [
          Alcotest.test_case "werner swap" `Quick test_werner_swap_closed_form;
          Alcotest.test_case "channel decay" `Quick
            test_channel_fidelity_monotone;
          Alcotest.test_case "max hops" `Quick test_max_hops;
          Alcotest.test_case "empty tree fidelity" `Quick
            test_tree_min_fidelity_empty;
        ] );
      ( "bounded routing",
        [
          Alcotest.test_case "hop budget" `Quick
            test_bounded_channel_respects_hop_budget;
          Alcotest.test_case "capacity" `Quick test_bounded_respects_capacity;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "meet threshold" `Quick test_solvers_meet_threshold;
          Alcotest.test_case "constraint costs rate" `Quick
            test_threshold_never_helps_rate;
          Alcotest.test_case "infeasible threshold" `Quick
            test_infeasible_threshold;
        ] );
    ]
