(* Unit tests for Qnet_core.Channel — Eq. (1) of the paper. *)

module Graph = Qnet_graph.Graph
module Params = Qnet_core.Params
module Channel = Qnet_core.Channel

let feq = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let params = Params.create ~alpha:1e-4 ~q:0.9 ()

(* u0 - s2 - u1 with 1000-unit fibers, plus a direct u0-u1 fiber and a
   user u3 adjacent to u1. *)
let fixture () =
  let b = Graph.Builder.create () in
  let u0 = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let u1 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:2000. ~y:0.
  in
  let s2 =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x:1000. ~y:0.
  in
  let u3 =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:3000. ~y:0.
  in
  ignore (Graph.Builder.add_edge b u0 s2 1000.);
  ignore (Graph.Builder.add_edge b s2 u1 1000.);
  ignore (Graph.Builder.add_edge b u0 u1 2500.);
  ignore (Graph.Builder.add_edge b u1 u3 1000.);
  (Graph.Builder.freeze b, u0, u1, s2, u3)

let test_eq1_two_links () =
  let g, u0, u1, s2, _ = fixture () in
  let c = Channel.make_exn g params [ u0; s2; u1 ] in
  (* Rate = q^(l-1) * exp(-alpha * total length) = 0.9 * e^-0.2. *)
  feq "Eq. (1)" (0.9 *. exp (-0.2)) (Channel.rate_prob c);
  Alcotest.(check int) "hops" 2 c.Channel.hops;
  feq "length" 2000. c.Channel.total_length;
  Alcotest.(check (list int)) "interior" [ s2 ] (Channel.interior_switches c)

let test_eq1_direct_link () =
  let g, u0, u1, _, _ = fixture () in
  let c = Channel.make_exn g params [ u0; u1 ] in
  (* One link: no swap factor at all. *)
  feq "direct rate" (exp (-0.25)) (Channel.rate_prob c);
  Alcotest.(check (list int)) "no interior" [] (Channel.interior_switches c)

let test_direct_link_q_zero () =
  let g, u0, u1, _, _ = fixture () in
  let p0 = Params.create ~alpha:1e-4 ~q:0. () in
  let c = Channel.make_exn g p0 [ u0; u1 ] in
  feq "q=0 direct channel still works" (exp (-0.25)) (Channel.rate_prob c);
  let c2 = Channel.make_exn g p0 [ u0; 2; u1 ] in
  feq "q=0 swap kills the channel" 0. (Channel.rate_prob c2)

let test_normalisation () =
  let g, u0, u1, s2, _ = fixture () in
  let forward = Channel.make_exn g params [ u0; s2; u1 ] in
  let backward = Channel.make_exn g params [ u1; s2; u0 ] in
  check_bool "reversed paths normalise equal" true
    (Channel.equal forward backward);
  Alcotest.(check (pair int int)) "endpoints sorted" (u0, u1)
    (Channel.endpoints backward);
  check_bool "connects query" true (Channel.connects backward u1 u0)

let test_rate_of_path_agrees () =
  let g, u0, u1, s2, _ = fixture () in
  let c = Channel.make_exn g params [ u0; s2; u1 ] in
  feq "rate_of_path = channel rate"
    (Channel.rate_of_path g params [ u0; s2; u1 ])
    (Channel.rate_prob c)

let test_validation_errors () =
  let g, u0, u1, s2, u3 = fixture () in
  let expect_error path =
    match Channel.make g params path with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected validation failure"
  in
  expect_error [];
  expect_error [ u0 ];
  expect_error [ u0; s2 ] (* endpoint is a switch *);
  expect_error [ s2; u1 ] (* endpoint is a switch *);
  expect_error [ u0; u1; u3 ] (* interior vertex is a user *);
  expect_error [ u0; u3 ] (* no fiber *);
  expect_error [ u0; s2; u0 ] (* repeated vertex, also degenerate *);
  Alcotest.check_raises "make_exn raises"
    (Invalid_argument
       "Channel.make: channel endpoints must be quantum users") (fun () ->
      ignore (Channel.make_exn g params [ u0; s2 ]))

let test_rate_decreases_with_length () =
  let g, u0, u1, s2, _ = fixture () in
  let via_switch = Channel.make_exn g params [ u0; s2; u1 ] in
  let direct = Channel.make_exn g params [ u0; u1 ] in
  (* 2000 units + one swap (0.9 e^-0.2 = 0.7369) beats 2500 direct
     (e^-0.25 = 0.7788)?  No: direct is better here; just check both
     match the closed forms and are ordered accordingly. *)
  check_bool "closed-form ordering" true
    (Channel.rate_prob direct > Channel.rate_prob via_switch)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let test_pp_smoke () =
  let g, u0, u1, s2, _ = fixture () in
  let c = Channel.make_exn g params [ u0; s2; u1 ] in
  let s = Format.asprintf "%a" Channel.pp c in
  check_bool "pp mentions channel" true (contains_substring s "channel")

let () =
  Alcotest.run "channel"
    [
      ( "rates",
        [
          Alcotest.test_case "Eq.1 two links" `Quick test_eq1_two_links;
          Alcotest.test_case "Eq.1 direct" `Quick test_eq1_direct_link;
          Alcotest.test_case "q = 0" `Quick test_direct_link_q_zero;
          Alcotest.test_case "rate_of_path" `Quick test_rate_of_path_agrees;
          Alcotest.test_case "ordering" `Quick test_rate_decreases_with_length;
        ] );
      ( "structure",
        [
          Alcotest.test_case "normalisation" `Quick test_normalisation;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
