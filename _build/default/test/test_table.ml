(* Unit tests for Qnet_util.Table. *)

module Table = Qnet_util.Table

let check_str = Alcotest.(check string)

let test_basic_render () =
  let t = Table.create [ "name"; "value" ] in
  let t = Table.add_row t [ "alpha"; "1" ] in
  let t = Table.add_row t [ "b"; "22" ] in
  check_str "aligned ascii"
    "| name  | value |\n|-------|-------|\n| alpha |     1 |\n| b     |    22 |"
    (Table.to_string t)

let test_alignment_override () =
  let t = Table.create ~aligns:[ Table.Right; Table.Left ] [ "a"; "b" ] in
  let t = Table.add_row t [ "x"; "yy" ] in
  check_str "custom alignment" "| a | b  |\n|---|----|\n| x | yy |"
    (Table.to_string t)

let test_header_only () =
  let t = Table.create [ "solo" ] in
  check_str "no rows" "| solo |\n|------|" (Table.to_string t)

let test_arity_errors () =
  Alcotest.check_raises "empty header"
    (Invalid_argument "Table.create: empty header") (fun () ->
      ignore (Table.create []));
  Alcotest.check_raises "aligns mismatch"
    (Invalid_argument "Table.create: aligns arity mismatch") (fun () ->
      ignore (Table.create ~aligns:[ Table.Left ] [ "a"; "b" ]));
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row mismatch"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      ignore (Table.add_row t [ "only-one" ]))

let test_float_cell () =
  check_str "zero" "0" (Table.float_cell 0.);
  check_str "plain" "1.234" (Table.float_cell 1.234);
  check_str "scientific small" "1.000e-05" (Table.float_cell 1e-5);
  check_str "scientific large" "1.000e+06" (Table.float_cell 1e6);
  check_str "nan" "nan" (Table.float_cell Float.nan)

let test_add_float_row () =
  let t = Table.create [ "m"; "x"; "y" ] in
  let t = Table.add_float_row t "r" [ 0.; 0.5 ] in
  check_str "float row rendering" "| m | x |   y |\n|---|---|-----|\n| r | 0 | 0.5 |"
    (Table.to_string t)

let test_csv_plain () =
  let t = Table.create [ "a"; "b" ] in
  let t = Table.add_row t [ "1"; "2" ] in
  check_str "plain csv" "a,b\n1,2" (Table.to_csv t)

let test_csv_quoting () =
  let t = Table.create [ "a"; "b" ] in
  let t = Table.add_row t [ "x,y"; "say \"hi\"" ] in
  check_str "quoted csv" "a,b\n\"x,y\",\"say \"\"hi\"\"\"" (Table.to_csv t)

let test_pp_matches_to_string () =
  let t = Table.add_row (Table.create [ "h" ]) [ "v" ] in
  check_str "pp = to_string" (Table.to_string t)
    (Format.asprintf "%a" Table.pp t)

let () =
  Alcotest.run "table"
    [
      ( "render",
        [
          Alcotest.test_case "basic" `Quick test_basic_render;
          Alcotest.test_case "alignment" `Quick test_alignment_override;
          Alcotest.test_case "header only" `Quick test_header_only;
          Alcotest.test_case "pp" `Quick test_pp_matches_to_string;
        ] );
      ( "cells",
        [
          Alcotest.test_case "float cell" `Quick test_float_cell;
          Alcotest.test_case "float row" `Quick test_add_float_row;
        ] );
      ( "csv",
        [
          Alcotest.test_case "plain" `Quick test_csv_plain;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
        ] );
      ("errors", [ Alcotest.test_case "arity" `Quick test_arity_errors ]);
    ]
