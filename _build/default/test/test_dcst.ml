(* Unit tests for Qnet_graph.Dcst — the NP-hardness reduction anchors. *)

module Graph = Qnet_graph.Graph
module Dcst = Qnet_graph.Dcst
module Mst = Qnet_graph.Mst

let weight (e : Graph.edge) = e.Graph.length
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let star n =
  (* Center 0 with n leaves; any spanning tree must use all star edges,
     forcing degree n at the center. *)
  let b = Graph.Builder.create () in
  let c = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  for i = 1 to n do
    let v =
      Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
        ~x:(float_of_int i) ~y:0.
    in
    ignore (Graph.Builder.add_edge b c v 1.)
  done;
  Graph.Builder.freeze b

let cycle n =
  let b = Graph.Builder.create () in
  let vs =
    Array.init n (fun i ->
        Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
          ~x:(float_of_int i) ~y:0.)
  in
  for i = 0 to n - 1 do
    ignore (Graph.Builder.add_edge b vs.(i) vs.((i + 1) mod n) 1.)
  done;
  Graph.Builder.freeze b

let test_star_needs_high_degree () =
  let g = star 4 in
  check_bool "degree 4 works" true
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:4);
  check_bool "degree 3 fails" false
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:3);
  check_bool "degree 1 fails" false
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:1)

let test_cycle_degree_two () =
  let g = cycle 6 in
  check_bool "hamiltonian path exists with degree 2" true
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:2);
  check_bool "degree 1 impossible beyond an edge" false
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:1)

let test_witness_is_valid_tree () =
  let g = cycle 5 in
  match Dcst.find_spanning_tree_with_max_degree g ~max_degree:2 with
  | None -> Alcotest.fail "cycle must admit a degree-2 spanning tree"
  | Some tree ->
      check_bool "spanning" true (Mst.is_spanning_tree g tree);
      check_bool "degree bound" true (Dcst.max_tree_degree tree <= 2)

let test_single_vertex () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.);
  let g = Graph.Builder.freeze b in
  check_bool "trivial instance" true
    (Dcst.exists_spanning_tree_with_max_degree g ~max_degree:0);
  match Dcst.min_spanning_tree_with_max_degree g ~max_degree:0 ~weight with
  | Some ([], w) -> Alcotest.(check (float 0.)) "zero weight" 0. w
  | _ -> Alcotest.fail "expected empty tree of weight 0"

let test_dcmst_matches_mst_when_unconstrained () =
  (* A small weighted graph where the MST has max degree 2, so the
     degree-3 DCMST must equal the MST weight. *)
  let b = Graph.Builder.create () in
  let add () =
    Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0.
  in
  let v0 = add () and v1 = add () and v2 = add () and v3 = add () in
  ignore (Graph.Builder.add_edge b v0 v1 1.);
  ignore (Graph.Builder.add_edge b v1 v2 2.);
  ignore (Graph.Builder.add_edge b v2 v3 3.);
  ignore (Graph.Builder.add_edge b v0 v3 10.);
  ignore (Graph.Builder.add_edge b v0 v2 10.);
  let g = Graph.Builder.freeze b in
  let mst_w = Mst.total_weight ~weight (Mst.kruskal g ~weight) in
  match Dcst.min_spanning_tree_with_max_degree g ~max_degree:3 ~weight with
  | None -> Alcotest.fail "feasible instance"
  | Some (_, w) -> Alcotest.(check (float 1e-9)) "equals MST" mst_w w

let test_dcmst_degree_bound_costs () =
  (* Star with cheap spokes plus an expensive outer path: degree cap 2
     at the center forces two expensive path edges. *)
  let b = Graph.Builder.create () in
  let c = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x:0. ~y:0. in
  let leaves =
    Array.init 4 (fun i ->
        Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0
          ~x:(float_of_int (i + 1))
          ~y:0.)
  in
  Array.iter (fun v -> ignore (Graph.Builder.add_edge b c v 1.)) leaves;
  for i = 0 to 2 do
    ignore (Graph.Builder.add_edge b leaves.(i) leaves.(i + 1) 5.)
  done;
  let g = Graph.Builder.freeze b in
  let unconstrained =
    match Dcst.min_spanning_tree_with_max_degree g ~max_degree:4 ~weight with
    | Some (_, w) -> w
    | None -> Alcotest.fail "unconstrained feasible"
  in
  let constrained =
    match Dcst.min_spanning_tree_with_max_degree g ~max_degree:2 ~weight with
    | Some (tree, w) ->
        check_bool "respects bound" true (Dcst.max_tree_degree tree <= 2);
        w
    | None -> Alcotest.fail "constrained feasible"
  in
  Alcotest.(check (float 1e-9)) "star optimum" 4. unconstrained;
  Alcotest.(check (float 1e-9)) "constrained pays for the cap" 12. constrained

let test_dcmst_infeasible () =
  let g = star 4 in
  check_bool "min variant also reports infeasible" true
    (Dcst.min_spanning_tree_with_max_degree g ~max_degree:2 ~weight = None)

let test_max_tree_degree_empty () =
  check_int "empty edge set" 0 (Dcst.max_tree_degree [])

let () =
  Alcotest.run "dcst"
    [
      ( "existence",
        [
          Alcotest.test_case "star" `Quick test_star_needs_high_degree;
          Alcotest.test_case "cycle" `Quick test_cycle_degree_two;
          Alcotest.test_case "witness" `Quick test_witness_is_valid_tree;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
        ] );
      ( "minimum",
        [
          Alcotest.test_case "unconstrained = MST" `Quick
            test_dcmst_matches_mst_when_unconstrained;
          Alcotest.test_case "degree cap costs" `Quick
            test_dcmst_degree_bound_costs;
          Alcotest.test_case "infeasible" `Quick test_dcmst_infeasible;
          Alcotest.test_case "degree of empty" `Quick test_max_tree_degree_empty;
        ] );
    ]
