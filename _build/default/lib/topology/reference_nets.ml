module Prng = Qnet_util.Prng
module Graph = Qnet_graph.Graph

type name = Nsfnet | Arpanet

let all = [ ("nsfnet", Nsfnet); ("arpanet", Arpanet) ]

(* NSFNET T1 backbone (1991): 14 nodes with approximate geographic
   coordinates on a unit grid (x grows east, y grows north), 21 links.
   0 Seattle, 1 Palo Alto, 2 San Diego, 3 Salt Lake City, 4 Boulder,
   5 Houston, 6 Lincoln, 7 Champaign, 8 Ann Arbor, 9 Pittsburgh,
   10 Atlanta, 11 Ithaca, 12 College Park, 13 Princeton. *)
let nsfnet_nodes =
  [|
    (0.05, 0.95); (0.05, 0.45); (0.12, 0.10); (0.25, 0.55); (0.35, 0.50);
    (0.45, 0.05); (0.48, 0.55); (0.60, 0.45); (0.65, 0.65); (0.75, 0.50);
    (0.72, 0.15); (0.82, 0.70); (0.85, 0.42); (0.92, 0.55);
  |]

let nsfnet_links =
  [
    (0, 1); (0, 3); (0, 8); (1, 2); (1, 3); (2, 5); (3, 4); (4, 6); (4, 5);
    (5, 10); (5, 12); (6, 7); (6, 9); (7, 8); (7, 10); (8, 11); (9, 11);
    (9, 12); (10, 12); (11, 13); (12, 13);
  ]

(* An ARPANET-like 20-node mesh (idealised early-1970s shape): a
   coast-to-coast elongated graph with two east-west trunks and
   cross-links. *)
let arpanet_nodes =
  [|
    (0.03, 0.70); (0.05, 0.30); (0.15, 0.55); (0.18, 0.20); (0.28, 0.65);
    (0.30, 0.35); (0.40, 0.75); (0.42, 0.45); (0.45, 0.15); (0.55, 0.60);
    (0.57, 0.30); (0.65, 0.80); (0.67, 0.50); (0.70, 0.15); (0.78, 0.65);
    (0.80, 0.35); (0.88, 0.75); (0.90, 0.50); (0.92, 0.20); (0.97, 0.60);
  |]

let arpanet_links =
  [
    (0, 1); (0, 2); (1, 3); (2, 3); (2, 4); (3, 5); (4, 5); (4, 6); (5, 7);
    (6, 7); (6, 9); (7, 8); (8, 10); (9, 10); (9, 11); (10, 12); (11, 12);
    (11, 14); (12, 13); (13, 15); (14, 15); (14, 16); (15, 17); (16, 17);
    (16, 19); (17, 18); (18, 19); (5, 8); (9, 12); (12, 15); (1, 2); (13, 18);
  ]

let topology = function
  | Nsfnet -> (nsfnet_nodes, nsfnet_links)
  | Arpanet -> (arpanet_nodes, arpanet_links)

let node_count name = Array.length (fst (topology name))

let build ?(area = Layout.default_area) rng name ~n_users ~qubits_per_switch
    ~user_qubits =
  let nodes, links = topology name in
  let n = Array.length nodes in
  if n_users < 1 then invalid_arg "Reference_nets.build: n_users < 1";
  if n_users > n then
    invalid_arg "Reference_nets.build: more users than nodes";
  if qubits_per_switch < 0 || user_qubits < 0 then
    invalid_arg "Reference_nets.build: negative qubits";
  let user_set = Hashtbl.create n_users in
  List.iter
    (fun i -> Hashtbl.replace user_set i ())
    (Prng.sample_without_replacement rng n_users n);
  let b = Graph.Builder.create () in
  Array.iteri
    (fun i (x, y) ->
      let kind, qubits =
        if Hashtbl.mem user_set i then (Graph.User, user_qubits)
        else (Graph.Switch, qubits_per_switch)
      in
      ignore
        (Graph.Builder.add_vertex b ~kind ~qubits ~x:(x *. area)
           ~y:(y *. area)))
    nodes;
  List.iter
    (fun (i, j) ->
      let xi, yi = nodes.(i) and xj, yj = nodes.(j) in
      let d =
        area *. sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
      in
      ignore (Graph.Builder.add_edge b i j (Float.max 1e-9 d)))
    links;
  Graph.Builder.freeze b
