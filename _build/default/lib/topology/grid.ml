module Prng = Qnet_util.Prng
module Graph = Qnet_graph.Graph

let generate rng spec =
  Spec.validate spec;
  let ns = spec.Spec.n_switches and nu = spec.Spec.n_users in
  if ns < 2 then invalid_arg "Grid.generate: need >= 2 switches";
  if ns < nu then invalid_arg "Grid.generate: need a switch per user";
  let cols = int_of_float (Float.ceil (sqrt (float_of_int ns))) in
  let rows = (ns + cols - 1) / cols in
  let cell = spec.Spec.area /. float_of_int (max cols rows + 1) in
  (* Switch vertex ids are 0 .. ns-1 laid out row-major; users follow. *)
  let switch_point i =
    let r = i / cols and c = i mod cols in
    Layout.
      { x = cell *. float_of_int (c + 1); y = cell *. float_of_int (r + 1) }
  in
  let b = Graph.Builder.create () in
  for i = 0 to ns - 1 do
    let p = switch_point i in
    ignore
      (Graph.Builder.add_vertex b ~kind:Graph.Switch
         ~qubits:spec.Spec.qubits_per_switch ~x:p.x ~y:p.y)
  done;
  (* Lattice fibers. *)
  for i = 0 to ns - 1 do
    let r = i / cols and c = i mod cols in
    if c + 1 < cols && i + 1 < ns then
      ignore (Graph.Builder.add_edge b i (i + 1) cell);
    if r + 1 < rows && i + cols < ns then
      ignore (Graph.Builder.add_edge b i (i + cols) cell)
  done;
  (* Users attach to distinct switches with a short access fiber. *)
  let hosts = Prng.sample_without_replacement rng nu ns in
  List.iter
    (fun host ->
      let hp = switch_point host in
      let dx = Prng.float rng (cell /. 2.) -. (cell /. 4.) in
      let dy = Prng.float rng (cell /. 2.) -. (cell /. 4.) in
      let ux = hp.x +. dx and uy = hp.y +. dy in
      let uid =
        Graph.Builder.add_vertex b ~kind:Graph.User
          ~qubits:spec.Spec.user_qubits ~x:ux ~y:uy
      in
      let d = Float.max 1e-9 (sqrt ((dx *. dx) +. (dy *. dy))) in
      ignore (Graph.Builder.add_edge b uid host d))
    hosts;
  Graph.Builder.freeze b
