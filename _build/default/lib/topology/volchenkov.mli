(** Volchenkov–Blanchard power-law generator (Physica A 2002).

    Produces graphs whose degree distribution follows
    [P(k) ∝ k^{−gamma}]: a power-law degree sequence is sampled, scaled
    to the spec's edge budget, and realised by stub matching
    (configuration model) with rejection of self-loops and parallel
    edges.  Node positions are uniform in the area, as in the paper's
    setup, so fiber lengths still reflect geometry. *)

type params = {
  gamma : float;  (** Power-law exponent; default 2.5. *)
  k_min : int;  (** Minimum degree in the sampled sequence; default 1. *)
}

val default_params : params

val generate :
  ?params:params -> Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** Generate a connected power-law network for [spec].
    @raise Invalid_argument on [gamma <= 1.] or [k_min < 1]. *)
