(** Random placement of network nodes in the simulation area.

    The paper places switches and users uniformly at random in a
    10,000 × 10,000-unit square (1 unit ≈ 1 km).  This module owns that
    geometry so every generator shares it. *)

type point = { x : float; y : float }

val default_area : float
(** Side of the paper's square area: [10_000.] units. *)

val distance : point -> point -> float
(** Euclidean distance. *)

val random_point : Qnet_util.Prng.t -> area:float -> point
(** Uniform point in [\[0, area\] × \[0, area\]]. *)

val random_points : Qnet_util.Prng.t -> area:float -> int -> point array
(** [random_points rng ~area n] draws [n] independent uniform points. *)

val max_distance : area:float -> float
(** Diameter of the area (corner-to-corner), used to normalise Waxman
    probabilities. *)

val ring_points : area:float -> int -> point array
(** [n] points evenly spaced on a circle inscribed in the area —
    the natural embedding for Watts–Strogatz ring lattices, preserving
    the property that lattice neighbours are physically close. *)
