(** Shared final assembly for topology generators.

    Every generator reduces to: place points, pick vertex roles, choose
    an edge set, then hand off here — which repairs connectivity (the
    paper's networks are connected by construction) and freezes the
    {!Qnet_graph.Graph.t} with fiber lengths equal to the Euclidean
    distance between endpoints. *)

val assign_roles :
  Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.vertex_kind array
(** A random role per vertex index: exactly [n_users] entries are
    [User], the rest [Switch], in a uniformly random arrangement —
    matching the paper's "switches and quantum users are placed
    randomly". *)

val connect_components :
  Layout.point array -> (int * int) list -> (int * int) list
(** [connect_components points edges] returns extra edges that join all
    connected components, choosing for each merge the geometrically
    shortest absent cross-component pair (so the repair perturbs the
    degree/length distributions minimally).  Returns [\[\]] when already
    connected. *)

val build :
  Spec.t ->
  points:Layout.point array ->
  roles:Qnet_graph.Graph.vertex_kind array ->
  edges:(int * int) list ->
  Qnet_graph.Graph.t
(** Freeze the graph: vertices in index order with role-appropriate
    qubit budgets, edges (deduplicated; self-loops rejected upstream)
    plus connectivity repair.  @raise Invalid_argument on arity
    mismatches. *)
