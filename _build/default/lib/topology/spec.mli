(** Common configuration for all topology generators.

    Field defaults mirror the paper's simulation setup (§V-A): 50
    switches, 10 users, a 10k × 10k-unit area, average degree 6 and 4
    qubits per switch. *)

type t = {
  n_users : int;
  n_switches : int;
  area : float;  (** Side length of the square placement area. *)
  avg_degree : float;  (** Target average vertex degree [D]. *)
  qubits_per_switch : int;
  user_qubits : int;
      (** Stored qubit budget for user vertices.  The paper gives users
          "enough quantum memory"; routing never constrains users, but a
          concrete value keeps the graph model uniform. *)
}

val default : t
(** The paper's §V-A configuration. *)

val create :
  ?n_users:int ->
  ?n_switches:int ->
  ?area:float ->
  ?avg_degree:float ->
  ?qubits_per_switch:int ->
  ?user_qubits:int ->
  unit ->
  t
(** {!default} with overrides.  @raise Invalid_argument on non-positive
    counts/area/degree or negative qubits. *)

val vertex_count : t -> int
(** [n_users + n_switches]. *)

val target_edges : t -> int
(** Edge budget [round (D · |V| / 2)], clamped to the simple-graph
    maximum and to the spanning minimum [|V| - 1]. *)

val validate : t -> unit
(** Re-check the invariants (used by generators receiving a hand-built
    record).  @raise Invalid_argument when violated. *)
