(** Watts–Strogatz small-world generator (Nature 1998).

    Each vertex starts connected to its [k/2] ring neighbours on each
    side, then every lattice edge is independently rewired with
    probability [beta] to a uniformly random non-duplicate endpoint.
    [k] is derived from the spec's average degree (rounded to the
    nearest even value ≥ 2).

    Physical embedding matters a lot here: the paper places {e all}
    nodes uniformly at random in the area (§V-A), so ring-adjacent
    vertices are typically far apart and fibers are long — which is why
    its Fig. 5 shows much lower rates on Watts–Strogatz and a complete
    N-FUSION failure.  [Random] embedding (the default) reproduces
    that; [Ring] places vertices on a circle so lattice neighbours are
    physically close, a kinder regime exposed for comparison studies. *)

type embedding =
  | Random  (** Uniform positions in the area — the paper's setup. *)
  | Ring  (** Evenly spaced on an inscribed circle. *)

type params = {
  beta : float;  (** Rewiring probability; default 0.3. *)
  embedding : embedding;  (** Default [Random]. *)
}

val default_params : params

val generate :
  ?params:params -> Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** Generate a connected Watts–Strogatz network for [spec].
    @raise Invalid_argument if [beta] is outside [\[0, 1\]] or the spec
    has fewer than 3 vertices. *)
