module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths

type summary = {
  vertices : int;
  edges : int;
  average_degree : float;
  max_degree : int;
  clustering : float;
  average_hops : float;
  diameter_hops : int;
  average_fiber : float;
}

let clustering_coefficient g v =
  let neighbors = List.map fst (Graph.neighbors g v) in
  let d = List.length neighbors in
  if d < 2 then 0.
  else begin
    let linked = ref 0 in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter (fun b -> if Graph.has_edge g a b then incr linked) rest;
          pairs rest
    in
    pairs neighbors;
    2. *. float_of_int !linked /. float_of_int (d * (d - 1))
  end

let mean_clustering g =
  let n = Graph.vertex_count g in
  if n = 0 then 0.
  else begin
    let total = ref 0. in
    for v = 0 to n - 1 do
      total := !total +. clustering_coefficient g v
    done;
    !total /. float_of_int n
  end

let hop_statistics g =
  let n = Graph.vertex_count g in
  let total = ref 0 and pairs = ref 0 and diameter = ref 0 in
  for src = 0 to n - 1 do
    let hops = Paths.bfs_hops g ~source:src in
    Array.iteri
      (fun dst h ->
        if dst <> src && h > 0 then begin
          total := !total + h;
          incr pairs;
          if h > !diameter then diameter := h
        end)
      hops
  done;
  if !pairs = 0 then (0., 0)
  else (float_of_int !total /. float_of_int !pairs, !diameter)

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  let n = Graph.vertex_count g in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + (try Hashtbl.find tbl d with Not_found -> 0))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let summarize g =
  let n = Graph.vertex_count g in
  let average_hops, diameter_hops = hop_statistics g in
  let max_degree = ref 0 in
  for v = 0 to n - 1 do
    max_degree := max !max_degree (Graph.degree g v)
  done;
  let m = Graph.edge_count g in
  let average_fiber =
    if m = 0 then 0.
    else
      Graph.fold_edges g ~init:0. ~f:(fun acc e -> acc +. e.Graph.length)
      /. float_of_int m
  in
  {
    vertices = n;
    edges = m;
    average_degree = Graph.average_degree g;
    max_degree = !max_degree;
    clustering = mean_clustering g;
    average_hops;
    diameter_hops;
    average_fiber;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "V=%d E=%d deg(avg %.2f, max %d) clustering %.3f hops(avg %.2f, diam %d) \
     fiber avg %.0f"
    s.vertices s.edges s.average_degree s.max_degree s.clustering
    s.average_hops s.diameter_hops s.average_fiber
