type point = { x : float; y : float }

let default_area = 10_000.

let distance p1 p2 =
  let dx = p1.x -. p2.x and dy = p1.y -. p2.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let random_point rng ~area =
  if area <= 0. then invalid_arg "Layout.random_point: non-positive area";
  { x = Qnet_util.Prng.float rng area; y = Qnet_util.Prng.float rng area }

let random_points rng ~area n =
  if n < 0 then invalid_arg "Layout.random_points: negative count";
  Array.init n (fun _ -> random_point rng ~area)

let max_distance ~area = area *. sqrt 2.

let ring_points ~area n =
  if n < 0 then invalid_arg "Layout.ring_points: negative count";
  let center = area /. 2. in
  let radius = area *. 0.45 in
  Array.init n (fun i ->
      let theta = 2. *. Float.pi *. float_of_int i /. float_of_int (max n 1) in
      {
        x = center +. (radius *. cos theta);
        y = center +. (radius *. sin theta);
      })
