(** Structural metrics of generated networks.

    The paper's Fig. 5 observation — that topology family dominates
    entanglement performance — begs for the standard graph metrics that
    distinguish the families.  This module computes them so tests can
    assert each generator actually produces its family's signature
    (e.g. Watts–Strogatz's small-world combination of high clustering
    and short paths) and examples can report them alongside rates. *)

type summary = {
  vertices : int;
  edges : int;
  average_degree : float;
  max_degree : int;
  clustering : float;  (** Mean local clustering coefficient. *)
  average_hops : float;
      (** Mean shortest-path hop count over connected vertex pairs. *)
  diameter_hops : int;  (** Largest hop distance among connected pairs;
                            [0] for graphs without pairs. *)
  average_fiber : float;  (** Mean fiber length; [0.] without edges. *)
}

val clustering_coefficient : Qnet_graph.Graph.t -> int -> float
(** Local clustering of one vertex: the fraction of its neighbour pairs
    that are themselves adjacent ([0.] for degree < 2). *)

val mean_clustering : Qnet_graph.Graph.t -> float
(** Average of {!clustering_coefficient} over all vertices ([0.] for
    the empty graph). *)

val hop_statistics : Qnet_graph.Graph.t -> float * int
(** [(average, diameter)] of hop distances over all connected ordered
    pairs, via BFS from every vertex.  [(0., 0)] when no pairs are
    connected. *)

val degree_histogram : Qnet_graph.Graph.t -> (int * int) list
(** [(degree, count)] pairs, ascending by degree. *)

val summarize : Qnet_graph.Graph.t -> summary
(** All metrics in one pass (O(V·E) for the BFS sweep). *)

val pp_summary : Format.formatter -> summary -> unit
