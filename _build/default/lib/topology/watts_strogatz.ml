module Prng = Qnet_util.Prng

type embedding = Random | Ring
type params = { beta : float; embedding : embedding }

let default_params = { beta = 0.3; embedding = Random }

let generate ?(params = default_params) rng spec =
  Spec.validate spec;
  if params.beta < 0. || params.beta > 1. then
    invalid_arg "Watts_strogatz.generate: beta outside [0, 1]";
  let n = Spec.vertex_count spec in
  if n < 3 then invalid_arg "Watts_strogatz.generate: need >= 3 vertices";
  let points =
    match params.embedding with
    | Random -> Layout.random_points rng ~area:spec.Spec.area n
    | Ring -> Layout.ring_points ~area:spec.Spec.area n
  in
  let roles = Assemble.assign_roles rng spec in
  let k =
    let half = max 1 (int_of_float (Float.round (spec.Spec.avg_degree /. 2.))) in
    min (2 * half) (n - 1)
  in
  let half = k / 2 in
  let present = Hashtbl.create (n * half) in
  let key u v = if u < v then (u, v) else (v, u) in
  let edges = ref [] in
  let add u v =
    if u <> v && not (Hashtbl.mem present (key u v)) then begin
      Hashtbl.replace present (key u v) ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  (* Ring lattice. *)
  for u = 0 to n - 1 do
    for off = 1 to half do
      ignore (add u ((u + off) mod n))
    done
  done;
  (* Rewiring pass: each lattice edge (u, u+off) may move its far
     endpoint to a random vertex. *)
  let rewired = ref [] in
  let survives = ref [] in
  List.iter
    (fun (u, v) ->
      if Prng.bernoulli rng params.beta then rewired := (u, v) :: !rewired
      else survives := (u, v) :: !survives)
    !edges;
  Hashtbl.reset present;
  edges := [];
  List.iter (fun (u, v) -> ignore (add u v)) !survives;
  List.iter
    (fun (u, _) ->
      (* Retry a few times for a fresh endpoint; on exhaustion keep the
         original edge rather than dropping a lattice slot. *)
      let rec attempt tries =
        if tries = 0 then false
        else
          let w = Prng.int rng n in
          if add u w then true else attempt (tries - 1)
      in
      ignore (attempt 16 : bool))
    !rewired;
  (* Any rewires that failed all retries simply reduce the edge count
     slightly; connectivity repair below restores a spanning graph. *)
  Assemble.build spec ~points ~roles ~edges:!edges
