(** Reference wide-area topologies.

    Random generators answer "does the algorithm generalise"; reference
    networks answer "what happens on the fiber plants people actually
    run".  Two standard research topologies are built in, with node
    coordinates scaled into the paper's 10k × 10k-unit area:

    - {b NSFNET} (T1 backbone, 1991): 14 nodes, 21 links — the most
      widely used evaluation topology in optical/quantum networking.
    - {b ARPA-like} (early ARPANET shape): 20 nodes, 32 links — a
      sparser, more elongated mesh.

    A subset of nodes is designated as quantum users (uniformly at
    random from a PRNG); the rest become switches with the given qubit
    budget. *)

type name = Nsfnet | Arpanet

val all : (string * name) list
(** Display-name table: [("nsfnet", Nsfnet); ("arpanet", Arpanet)]. *)

val node_count : name -> int
(** Number of nodes in the reference topology. *)

val build :
  ?area:float ->
  Qnet_util.Prng.t ->
  name ->
  n_users:int ->
  qubits_per_switch:int ->
  user_qubits:int ->
  Qnet_graph.Graph.t
(** Instantiate the reference network.  [n_users] nodes drawn at random
    become users.  @raise Invalid_argument if [n_users] exceeds the
    node count or is < 1. *)
