module Prng = Qnet_util.Prng

type params = { alpha_w : float }

let default_params = { alpha_w = 0.15 }

(* Classic Waxman: accept each pair independently with probability
   beta * exp(-d / (alpha_w * L)).  Edge count is a random variable, so
   the paper's fixed-average-degree evaluation uses [generate] instead;
   this form exists for fidelity to the original model (and tests). *)
let generate_classic ?(params = default_params) ~beta rng spec =
  Spec.validate spec;
  if not (params.alpha_w > 0.) then
    invalid_arg "Waxman.generate_classic: alpha_w must be positive";
  if not (beta > 0. && beta <= 1.) then
    invalid_arg "Waxman.generate_classic: beta outside (0, 1]";
  let n = Spec.vertex_count spec in
  let points = Layout.random_points rng ~area:spec.Spec.area n in
  let roles = Assemble.assign_roles rng spec in
  let scale = params.alpha_w *. Layout.max_distance ~area:spec.Spec.area in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Layout.distance points.(u) points.(v) in
      if Prng.bernoulli rng (beta *. exp (-.d /. scale)) then
        edges := (u, v) :: !edges
    done
  done;
  Assemble.build spec ~points ~roles ~edges:!edges

let generate ?(params = default_params) rng spec =
  Spec.validate spec;
  if not (params.alpha_w > 0.) then
    invalid_arg "Waxman.generate: alpha_w must be positive";
  let n = Spec.vertex_count spec in
  let points = Layout.random_points rng ~area:spec.Spec.area n in
  let roles = Assemble.assign_roles rng spec in
  let scale = params.alpha_w *. Layout.max_distance ~area:spec.Spec.area in
  (* Efraimidis–Spirakis: each pair gets key ln(U)/w; the m largest keys
     are a weighted sample without replacement. *)
  let keyed = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Layout.distance points.(u) points.(v) in
      let w = exp (-.d /. scale) in
      let u01 = Float.max 1e-300 (Prng.float rng 1.) in
      keyed := (log u01 /. w, (u, v)) :: !keyed
    done
  done;
  let sorted =
    List.sort (fun (k1, _) (k2, _) -> Float.compare k2 k1) !keyed
  in
  let budget = Spec.target_edges spec in
  let edges =
    List.filteri (fun i _ -> i < budget) sorted |> List.map snd
  in
  Assemble.build spec ~points ~roles ~edges
