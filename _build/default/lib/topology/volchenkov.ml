module Prng = Qnet_util.Prng

type params = { gamma : float; k_min : int }

let default_params = { gamma = 2.5; k_min = 1 }

(* Discrete power-law sample on [k_min, k_max] by inverse transform over
   the (finite) normalised mass function. *)
let sample_degree rng ~gamma ~k_min ~k_max =
  let mass k = float_of_int k ** -.gamma in
  let total = ref 0. in
  for k = k_min to k_max do
    total := !total +. mass k
  done;
  let u = Prng.float rng !total in
  let rec scan k acc =
    if k >= k_max then k_max
    else
      let acc = acc +. mass k in
      if u < acc then k else scan (k + 1) acc
  in
  scan k_min 0.

let generate ?(params = default_params) rng spec =
  Spec.validate spec;
  if params.gamma <= 1. then invalid_arg "Volchenkov.generate: gamma <= 1";
  if params.k_min < 1 then invalid_arg "Volchenkov.generate: k_min < 1";
  let n = Spec.vertex_count spec in
  let points = Layout.random_points rng ~area:spec.Spec.area n in
  let roles = Assemble.assign_roles rng spec in
  let k_max = max params.k_min (n - 1) in
  let degrees =
    Array.init n (fun _ ->
        sample_degree rng ~gamma:params.gamma ~k_min:params.k_min ~k_max)
  in
  (* Scale stub counts so the expected edge total matches the budget. *)
  let budget = Spec.target_edges spec in
  let stub_total = Array.fold_left ( + ) 0 degrees in
  let scale = 2. *. float_of_int budget /. float_of_int (max 1 stub_total) in
  let degrees =
    Array.map
      (fun d ->
        let scaled = int_of_float (Float.round (float_of_int d *. scale)) in
        min (n - 1) (max params.k_min scaled))
      degrees
  in
  (* Configuration-model stub matching with rejection. *)
  let stubs = ref [] in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs := v :: !stubs
      done)
    degrees;
  let stubs = Array.of_list !stubs in
  Prng.shuffle_in_place rng stubs;
  let present = Hashtbl.create (Array.length stubs) in
  let key u v = if u < v then (u, v) else (v, u) in
  let edges = ref [] in
  let n_stubs = Array.length stubs in
  let i = ref 0 in
  while !i + 1 < n_stubs do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v && not (Hashtbl.mem present (key u v)) then begin
      Hashtbl.replace present (key u v) ();
      edges := (u, v) :: !edges
    end;
    i := !i + 2
  done;
  Assemble.build spec ~points ~roles ~edges:!edges
