module Prng = Qnet_util.Prng
module Graph = Qnet_graph.Graph
module Union_find = Qnet_graph.Union_find

let assign_roles rng spec =
  Spec.validate spec;
  let n = Spec.vertex_count spec in
  let roles =
    Array.init n (fun i ->
        if i < spec.Spec.n_users then Graph.User else Graph.Switch)
  in
  Prng.shuffle_in_place rng roles;
  roles

let key (u, v) = if u < v then (u, v) else (v, u)

let connect_components points edges =
  let n = Array.length points in
  let uf = Union_find.create n in
  let present = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace present (key (u, v)) ();
      ignore (Union_find.union uf u v))
    edges;
  let extra = ref [] in
  while Union_find.count_sets uf > 1 do
    (* Shortest absent pair across any two components. *)
    let best = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if
          (not (Union_find.same uf u v))
          && not (Hashtbl.mem present (u, v))
        then begin
          let d = Layout.distance points.(u) points.(v) in
          match !best with
          | Some (bd, _, _) when bd <= d -> ()
          | _ -> best := Some (d, u, v)
        end
      done
    done;
    match !best with
    | None ->
        (* Unreachable for >= 2 vertices: some absent cross pair always
           exists in a simple graph with more than one component. *)
        invalid_arg "Assemble.connect_components: cannot connect"
    | Some (_, u, v) ->
        Hashtbl.replace present (u, v) ();
        ignore (Union_find.union uf u v);
        extra := (u, v) :: !extra
  done;
  List.rev !extra

let build spec ~points ~roles ~edges =
  Spec.validate spec;
  let n = Spec.vertex_count spec in
  if Array.length points <> n then
    invalid_arg "Assemble.build: points arity mismatch";
  if Array.length roles <> n then
    invalid_arg "Assemble.build: roles arity mismatch";
  let b = Graph.Builder.create () in
  Array.iteri
    (fun i (p : Layout.point) ->
      let kind = roles.(i) in
      let qubits =
        match kind with
        | Graph.User -> spec.Spec.user_qubits
        | Graph.Switch -> spec.Spec.qubits_per_switch
      in
      ignore (Graph.Builder.add_vertex b ~kind ~qubits ~x:p.x ~y:p.y))
    points;
  let add (u, v) =
    if u <> v && not (Graph.Builder.has_edge b u v) then begin
      (* Coincident random points are measure-zero but guard anyway:
         fiber lengths must be strictly positive. *)
      let d = Float.max 1e-9 (Layout.distance points.(u) points.(v)) in
      ignore (Graph.Builder.add_edge b u v d)
    end
  in
  List.iter add edges;
  List.iter add (connect_components points edges);
  Graph.Builder.freeze b
