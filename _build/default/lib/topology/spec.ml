type t = {
  n_users : int;
  n_switches : int;
  area : float;
  avg_degree : float;
  qubits_per_switch : int;
  user_qubits : int;
}

let validate t =
  if t.n_users < 1 then invalid_arg "Spec: need at least one user";
  if t.n_switches < 0 then invalid_arg "Spec: negative switch count";
  if not (t.area > 0. && Float.is_finite t.area) then
    invalid_arg "Spec: area must be positive and finite";
  if not (t.avg_degree > 0. && Float.is_finite t.avg_degree) then
    invalid_arg "Spec: avg_degree must be positive and finite";
  if t.qubits_per_switch < 0 then invalid_arg "Spec: negative switch qubits";
  if t.user_qubits < 0 then invalid_arg "Spec: negative user qubits"

let default =
  {
    n_users = 10;
    n_switches = 50;
    area = Layout.default_area;
    avg_degree = 6.;
    qubits_per_switch = 4;
    user_qubits = 1_000_000;
  }

let create ?(n_users = default.n_users) ?(n_switches = default.n_switches)
    ?(area = default.area) ?(avg_degree = default.avg_degree)
    ?(qubits_per_switch = default.qubits_per_switch)
    ?(user_qubits = default.user_qubits) () =
  let t =
    { n_users; n_switches; area; avg_degree; qubits_per_switch; user_qubits }
  in
  validate t;
  t

let vertex_count t = t.n_users + t.n_switches

let target_edges t =
  let n = vertex_count t in
  let wanted =
    int_of_float (Float.round (t.avg_degree *. float_of_int n /. 2.))
  in
  let max_simple = n * (n - 1) / 2 in
  max (n - 1) (min wanted max_simple)
