(** Waxman random-network generator (Waxman, JSAC 1988) — the paper's
    default topology.

    Classic Waxman accepts each candidate edge [(u, v)] independently
    with probability [β · exp (−d(u,v) / (α_w · L))] where [L] is the
    area diameter.  The paper instead fixes the {e total edge count}
    from a target average degree, so this implementation performs
    weighted sampling without replacement over all vertex pairs with
    weight [exp (−d / (α_w · L))] (the [β] density knob is subsumed by
    the fixed edge budget) using the Efraimidis–Spirakis one-pass
    scheme.  The resulting graph has exactly the budgeted edge count
    (before connectivity repair) with the Waxman distance bias. *)

type params = { alpha_w : float  (** Distance-decay shape; default 0.15. *) }

val default_params : params

val generate :
  ?params:params -> Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** Generate a connected Waxman network for [spec] with the edge count
    fixed by [Spec.target_edges]. *)

val generate_classic :
  ?params:params ->
  beta:float ->
  Qnet_util.Prng.t ->
  Spec.t ->
  Qnet_graph.Graph.t
(** The original accept/reject form: each pair becomes a fiber
    independently with probability [beta · exp (−d / (α_w · L))], so
    the edge count is random (the spec's [avg_degree] is ignored).
    Provided for fidelity to Waxman's 1988 model; the paper's
    fixed-degree evaluation uses {!generate}.
    @raise Invalid_argument when [beta] is outside (0, 1]. *)
