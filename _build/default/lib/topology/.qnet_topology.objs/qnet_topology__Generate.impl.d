lib/topology/generate.ml: Grid Volchenkov Watts_strogatz Waxman
