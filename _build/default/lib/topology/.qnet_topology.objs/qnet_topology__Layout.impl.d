lib/topology/layout.ml: Array Float Qnet_util
