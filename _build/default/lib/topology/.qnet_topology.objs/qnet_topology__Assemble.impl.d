lib/topology/assemble.ml: Array Float Hashtbl Layout List Qnet_graph Qnet_util Spec
