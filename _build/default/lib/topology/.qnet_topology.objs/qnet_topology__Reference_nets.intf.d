lib/topology/reference_nets.mli: Qnet_graph Qnet_util
