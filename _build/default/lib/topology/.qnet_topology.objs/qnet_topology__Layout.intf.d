lib/topology/layout.mli: Qnet_util
