lib/topology/volchenkov.mli: Qnet_graph Qnet_util Spec
