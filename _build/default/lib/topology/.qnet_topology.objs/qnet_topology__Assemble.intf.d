lib/topology/assemble.mli: Layout Qnet_graph Qnet_util Spec
