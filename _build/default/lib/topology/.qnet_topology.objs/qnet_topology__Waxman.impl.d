lib/topology/waxman.ml: Array Assemble Float Layout List Qnet_util Spec
