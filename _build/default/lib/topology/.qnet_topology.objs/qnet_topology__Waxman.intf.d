lib/topology/waxman.mli: Qnet_graph Qnet_util Spec
