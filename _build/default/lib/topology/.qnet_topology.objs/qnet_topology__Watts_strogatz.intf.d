lib/topology/watts_strogatz.mli: Qnet_graph Qnet_util Spec
