lib/topology/grid.mli: Qnet_graph Qnet_util Spec
