lib/topology/watts_strogatz.ml: Assemble Float Hashtbl Layout List Qnet_util Spec
