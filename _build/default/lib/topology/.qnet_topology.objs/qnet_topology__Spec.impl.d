lib/topology/spec.ml: Float Layout
