lib/topology/grid.ml: Float Layout List Qnet_graph Qnet_util Spec
