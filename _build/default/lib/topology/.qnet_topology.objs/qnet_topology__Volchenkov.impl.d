lib/topology/volchenkov.ml: Array Assemble Float Hashtbl Layout Qnet_util Spec
