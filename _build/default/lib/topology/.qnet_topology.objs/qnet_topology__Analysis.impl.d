lib/topology/analysis.ml: Array Format Hashtbl List Qnet_graph
