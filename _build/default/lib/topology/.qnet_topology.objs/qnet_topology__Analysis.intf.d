lib/topology/analysis.mli: Format Qnet_graph
