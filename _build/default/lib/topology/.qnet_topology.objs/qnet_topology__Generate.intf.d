lib/topology/generate.mli: Qnet_graph Qnet_util Spec Volchenkov Watts_strogatz Waxman
