lib/topology/reference_nets.ml: Array Float Hashtbl Layout List Qnet_graph Qnet_util
