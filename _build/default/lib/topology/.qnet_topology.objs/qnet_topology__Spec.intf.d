lib/topology/spec.mli:
