(** Regular grid (lattice) topology — an extension beyond the paper's
    three random generators.

    Related work (e.g. Li et al., npj QI 2021 — reference [15] of the
    paper) evaluates entanglement routing on lattices; this generator
    lets examples and ablations compare the MUERP algorithms on the same
    structured substrate.  Switches occupy a near-square grid with
    4-neighbour connectivity; users are attached to distinct random grid
    switches by short access fibers. *)

val generate : Qnet_util.Prng.t -> Spec.t -> Qnet_graph.Graph.t
(** Generate the lattice network.  [spec.avg_degree] is ignored (the
    lattice fixes connectivity); other fields apply unchanged.
    @raise Invalid_argument if [n_switches < n_users] or
    [n_switches < 2] (each user needs its own attachment switch). *)
