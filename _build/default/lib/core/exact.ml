module Graph = Qnet_graph.Graph
module Logprob = Qnet_util.Logprob

type bounds = { max_users : int; max_vertices : int; max_path_hops : int }

let default_bounds = { max_users = 5; max_vertices = 14; max_path_hops = 8 }

(* Prüfer decoding: a sequence of length k-2 over [0, k) maps to a
   unique labelled tree on k vertices.  Linear scans suffice: k <= 7. *)
let decode_prufer k seq =
  let degree = Array.make k 1 in
  List.iter (fun v -> degree.(v) <- degree.(v) + 1) seq;
  let edges = ref [] in
  let smallest_leaf () =
    let rec scan i =
      if i >= k then invalid_arg "Exact.decode_prufer: malformed sequence"
      else if degree.(i) = 1 then i
      else scan (i + 1)
    in
    scan 0
  in
  List.iter
    (fun v ->
      let leaf = smallest_leaf () in
      edges := (min leaf v, max leaf v) :: !edges;
      degree.(leaf) <- 0;
      degree.(v) <- degree.(v) - 1)
    seq;
  let last_two =
    List.filter (fun i -> degree.(i) = 1) (List.init k (fun i -> i))
  in
  (match last_two with
  | [ a; b ] -> edges := (min a b, max a b) :: !edges
  | _ -> invalid_arg "Exact.decode_prufer: malformed sequence");
  List.rev !edges

let prufer_trees k =
  if k < 0 then invalid_arg "Exact.prufer_trees: negative k";
  if k > 7 then invalid_arg "Exact.prufer_trees: k too large";
  if k <= 1 then [ [] ]
  else if k = 2 then [ [ (0, 1) ] ]
  else begin
    let len = k - 2 in
    let rec sequences n =
      if n = 0 then [ [] ]
      else
        let shorter = sequences (n - 1) in
        List.concat_map
          (fun tail -> List.init k (fun v -> v :: tail))
          shorter
    in
    List.map (decode_prufer k) (sequences len)
  end

let all_simple_paths g ~src ~dst ~max_hops =
  let acc = ref [] in
  let visited = Hashtbl.create 16 in
  let rec dfs v path hops =
    if v = dst then acc := List.rev (v :: path) :: !acc
    else if hops < max_hops then
      List.iter
        (fun (w, _) ->
          let enterable =
            (not (Hashtbl.mem visited w))
            && (w = dst || Graph.is_switch g w)
          in
          if enterable then begin
            Hashtbl.replace visited w ();
            dfs w (v :: path) (hops + 1);
            Hashtbl.remove visited w
          end)
        (Graph.neighbors g v)
  in
  Hashtbl.replace visited src ();
  dfs src [] 0;
  !acc

let solve ?(bounds = default_bounds) g params =
  let users = Graph.users g in
  let k = List.length users in
  if k > bounds.max_users then invalid_arg "Exact.solve: too many users";
  if Graph.vertex_count g > bounds.max_vertices then
    invalid_arg "Exact.solve: graph too large";
  if k <= 1 then Some (Ent_tree.of_channels [])
  else begin
    let user_arr = Array.of_list users in
    (* Pre-compute candidate channels per user pair. *)
    let pair_paths = Hashtbl.create 16 in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let paths =
          all_simple_paths g ~src:user_arr.(i) ~dst:user_arr.(j)
            ~max_hops:bounds.max_path_hops
        in
        let channels =
          List.filter_map
            (fun p ->
              match Channel.make g params p with
              | Ok c -> Some c
              | Error _ -> None)
            paths
        in
        Hashtbl.replace pair_paths (i, j) channels
      done
    done;
    (* Candidates sorted best-first per pair: good solutions are found
       early, making the branch-and-bound prune effective. *)
    Hashtbl.iter
      (fun key channels ->
        Hashtbl.replace pair_paths key
          (List.sort
             (fun (c1 : Channel.t) (c2 : Channel.t) ->
               Logprob.compare_desc c1.rate c2.rate)
             channels))
      (Hashtbl.copy pair_paths);
    (* Per-pair best achievable -ln rate, for an admissible lower bound
       on any completion of a partial assignment. *)
    let pair_floor = Hashtbl.create 16 in
    Hashtbl.iter
      (fun key channels ->
        let floor =
          List.fold_left
            (fun acc (c : Channel.t) ->
              Float.min acc (Logprob.to_neg_log c.rate))
            infinity channels
        in
        Hashtbl.replace pair_floor key floor)
      pair_paths;
    let capacity = Capacity.of_graph g in
    let best_neg_log = ref infinity in
    let best : Ent_tree.t option ref = ref None in
    (* For one tree shape, backtrack over channel choices per edge,
       pruning when the partial product plus the remaining pairs'
       unconstrained floors cannot beat the incumbent. *)
    let rec assign shape chosen partial_neg_log floor_rest =
      match shape with
      | [] ->
          if partial_neg_log < !best_neg_log then begin
            best_neg_log := partial_neg_log;
            best := Some (Ent_tree.of_channels (List.rev chosen))
          end
      | ((i, j) :: rest : (int * int) list) ->
          let key = (min i j, max i j) in
          let candidates = Hashtbl.find pair_paths key in
          let my_floor =
            try Hashtbl.find pair_floor key with Not_found -> infinity
          in
          let floor_rest' = floor_rest -. my_floor in
          List.iter
            (fun (c : Channel.t) ->
              let neg_log = Logprob.to_neg_log c.rate in
              (* Bound: even if every remaining pair got its best
                 unconstrained channel, can we still win? *)
              if
                partial_neg_log +. neg_log +. floor_rest' < !best_neg_log
              then begin
                let feasible =
                  List.for_all
                    (fun s -> Capacity.remaining capacity s >= 2)
                    (Channel.interior_switches c)
                in
                if feasible then begin
                  Capacity.consume_channel capacity c.path;
                  assign rest (c :: chosen)
                    (partial_neg_log +. neg_log)
                    floor_rest';
                  Capacity.release_channel capacity c.path
                end
              end)
            candidates
    in
    List.iter
      (fun shape ->
        let shape_floor =
          List.fold_left
            (fun acc (i, j) ->
              acc
              +. (try Hashtbl.find pair_floor (min i j, max i j)
                  with Not_found -> infinity))
            0. shape
        in
        if shape_floor < !best_neg_log then assign shape [] 0. shape_floor)
      (prufer_trees k);
    !best
  end
