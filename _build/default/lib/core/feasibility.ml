module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths

type verdict = Feasible | Infeasible | Unknown

let necessary_condition g = Paths.users_connected g

let sufficient_condition g =
  necessary_condition g && Alg_optimal.sufficient_condition g

let quick_verdict g =
  if not (necessary_condition g) then Infeasible
  else if sufficient_condition g then Feasible
  else Unknown

let exact_verdict ?bounds g params =
  match Exact.solve ?bounds g params with
  | Some _ -> Feasible
  | None -> Infeasible
