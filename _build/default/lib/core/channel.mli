(** Quantum channels — paths of quantum links and switches joining two
    users (Definition 2), with the entanglement rate of Eq. (1).

    For a channel through vertices [v0 = u_i, v1, …, v_l = u_j] (all
    interior vertices switches), the entanglement rate is
    [q^(l−1) · exp (−alpha · Σ L_k)]: every quantum link must generate a
    Bell pair and every interior switch must succeed at its BSM swap
    within the same time slot. *)

type t = private {
  src : int;  (** User endpoint (smaller vertex id of the two). *)
  dst : int;  (** User endpoint. *)
  path : int list;  (** Full vertex path [src; …; dst]. *)
  hops : int;  (** Number of quantum links [l = List.length path − 1]. *)
  total_length : float;  (** Σ of fiber lengths along the path. *)
  rate : Qnet_util.Logprob.t;  (** Eq. (1) in negative-log space. *)
}

val make :
  Qnet_graph.Graph.t -> Params.t -> int list -> (t, string) result
(** [make g params path] validates and builds a channel from a vertex
    path: at least two vertices, no repeats, both endpoints users, all
    interior vertices switches, consecutive vertices joined by fibers.
    Channels are normalised so [src <= dst] (entanglement is
    undirected); the stored [path] runs from [src] to [dst]. *)

val make_exn : Qnet_graph.Graph.t -> Params.t -> int list -> t
(** Like {!make} but raising [Invalid_argument] with the reason. *)

val rate_of_path : Qnet_graph.Graph.t -> Params.t -> int list -> float
(** Eq. (1) for an arbitrary (already validated) vertex path, as a plain
    probability. *)

val rate_prob : t -> float
(** The channel's Eq. (1) rate as a plain probability. *)

val interior_switches : t -> int list
(** Switch ids strictly between the endpoints, in path order. *)

val endpoints : t -> int * int
(** [(src, dst)] with [src <= dst]. *)

val connects : t -> int -> int -> bool
(** Whether the channel joins the two given users (order-insensitive). *)

val equal : t -> t -> bool
(** Structural equality on the vertex path (after normalisation). *)

val pp : Format.formatter -> t -> unit
