(** Feasibility conditions for MUERP instances (§III–§IV-B).

    Deciding feasibility exactly is NP-complete (Theorem 1); this module
    collects the cheap necessary condition, the paper's sufficient
    condition, and an exact decision for small instances via
    {!Exact.solve}. *)

type verdict =
  | Feasible  (** A spanning entanglement tree certainly exists. *)
  | Infeasible  (** No spanning entanglement tree can exist. *)
  | Unknown  (** Neither bound fired; the instance is in the NP-complete
                 gray zone. *)

val necessary_condition : Qnet_graph.Graph.t -> bool
(** Users must be mutually reachable through the fiber topology; if not,
    no channel assignment can span them. *)

val sufficient_condition : Qnet_graph.Graph.t -> bool
(** [Q_r ≥ 2·|U|] for every switch (Theorem 3's premise), {e and} the
    necessary condition — together they guarantee a feasible solution. *)

val quick_verdict : Qnet_graph.Graph.t -> verdict
(** Polynomial-time screening using only the two conditions above. *)

val exact_verdict :
  ?bounds:Exact.bounds -> Qnet_graph.Graph.t -> Params.t -> verdict
(** Exact decision by exhaustive search — [Feasible] or [Infeasible],
    never [Unknown], but limited to {!Exact.bounds}-sized instances
    (raises [Invalid_argument] beyond them).  Note [Infeasible] here is
    relative to the search's path-hop bound. *)
