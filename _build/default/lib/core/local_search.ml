module Graph = Qnet_graph.Graph
module Union_find = Qnet_graph.Union_find
module Logprob = Qnet_util.Logprob

type stats = {
  iterations : int;
  exchanges : int;
  initial_neg_log : float;
  final_neg_log : float;
}

(* Best capacity-feasible channel between the two components the removed
   channel left behind. *)
let best_cross_channel g params ~capacity ~users ~uf =
  let best = ref None in
  List.iter
    (fun src ->
      Routing.best_channels_from g params ~capacity ~src
      |> List.iter (fun (dst, (c : Channel.t)) ->
             if List.mem dst users && not (Union_find.same uf src dst) then
               match !best with
               | Some (b : Channel.t)
                 when Logprob.compare_desc b.rate c.rate <= 0 ->
                   ()
               | _ -> best := Some c))
    users;
  !best

let improve ?(max_rounds = 50) g params (tree : Ent_tree.t) =
  let users = Graph.users g in
  let capacity = Capacity.of_graph g in
  List.iter
    (fun (c : Channel.t) ->
      try Capacity.consume_channel capacity c.path
      with Invalid_argument _ ->
        invalid_arg "Local_search.improve: tree exceeds switch budgets")
    tree.channels;
  let channels = ref tree.channels in
  let exchanges = ref 0 in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    (* First-improvement pass over the current channels. *)
    let rec pass before = function
      | [] -> ()
      | (c : Channel.t) :: after ->
          Capacity.release_channel capacity c.path;
          (* Components without c. *)
          let uf = Union_find.create (Graph.vertex_count g) in
          List.iter
            (fun (c' : Channel.t) ->
              ignore (Union_find.union uf c'.src c'.dst))
            (before @ after);
          let replacement =
            best_cross_channel g params ~capacity ~users ~uf
          in
          (match replacement with
          | Some r when Logprob.compare_desc r.rate c.rate < 0 ->
              Capacity.consume_channel capacity r.path;
              channels := before @ (r :: after);
              incr exchanges;
              improved := true
          | Some _ | None ->
              (* Keep the original channel. *)
              Capacity.consume_channel capacity c.path);
          if !improved then () else pass (before @ [ c ]) after
    in
    pass [] !channels
  done;
  let result = Ent_tree.of_channels !channels in
  ( result,
    {
      iterations = !rounds;
      exchanges = !exchanges;
      initial_neg_log = Ent_tree.rate_neg_log tree;
      final_neg_log = Ent_tree.rate_neg_log result;
    } )

let solve ?max_rounds g params =
  match Alg_conflict_free.solve g params with
  | None -> None
  | Some tree -> Some (fst (improve ?max_rounds g params tree))
