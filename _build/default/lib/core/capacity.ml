module Graph = Qnet_graph.Graph

type t = { graph : Graph.t; residual : int array }

let of_graph graph =
  let n = Graph.vertex_count graph in
  let residual =
    Array.init n (fun v ->
        if Graph.is_switch graph v then Graph.qubits graph v else 0)
  in
  { graph; residual }

let copy t = { t with residual = Array.copy t.residual }

let remaining t v =
  if Graph.is_user t.graph v then max_int else t.residual.(v)

let can_relay t v = Graph.is_user t.graph v || t.residual.(v) >= 2

let interior path =
  match path with
  | [] | [ _ ] -> []
  | _ :: rest ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: tl -> x :: drop_last tl
      in
      drop_last rest

let consume_channel t path =
  let switches =
    List.filter (fun v -> Graph.is_switch t.graph v) (interior path)
  in
  if List.exists (fun v -> t.residual.(v) < 2) switches then
    invalid_arg "Capacity.consume_channel: insufficient qubits";
  List.iter (fun v -> t.residual.(v) <- t.residual.(v) - 2) switches

let release_channel t path =
  List.iter
    (fun v ->
      if Graph.is_switch t.graph v then t.residual.(v) <- t.residual.(v) + 2)
    (interior path)

let used t v =
  if Graph.is_user t.graph v then 0 else Graph.qubits t.graph v - t.residual.(v)

let overcommitted t =
  let bad = ref [] in
  Array.iteri (fun v r -> if r < 0 then bad := v :: !bad) t.residual;
  List.rev !bad
