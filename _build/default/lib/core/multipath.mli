(** k-best channel enumeration (Yen's algorithm in rate space).

    The multipath literature the paper compares against (Sutcliffe &
    Beghelli's MP-* protocols, reference [32]) routes over several
    candidate paths per user pair.  This module adapts Yen's k-shortest
    loopless paths to the quantum channel model: candidates are ranked
    by Eq. (1) entanglement rate, all interior vertices must be
    capacity-holding switches, and fibers/relays excluded by a spur's
    root prefix are masked per Yen's deviation rule.

    Beyond baseline fidelity to [32], the k-best list powers an
    alternative conflict-resolution strategy (see {!Alg_kbest}): when a
    switch conflict evicts a channel, try the pair's next-best candidate
    before falling back to a full re-route. *)

val k_best_channels :
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  k:int ->
  Channel.t list
(** Up to [k] distinct maximum-rate channels between two users, in
    strictly descending rate order (ties broken deterministically),
    each individually feasible under [capacity].  Fewer than [k] are
    returned when the graph runs out of loopless candidates.
    @raise Invalid_argument on non-user endpoints, [src = dst] or
    [k < 1]. *)

val channels_vertex_disjoint : Channel.t -> Channel.t -> bool
(** Whether two channels share no interior switch — the condition under
    which they can be reserved simultaneously without interacting on
    any switch's memory. *)
