(** Algorithm 1 — the maximum-entanglement-rate channel between users.

    Eq. (1) is a product, so it is maximised by a shortest path in the
    negative-log transform (§IV-A): each fiber edge gets the additive
    weight [alpha · L + (−ln q)], one [−ln q] is refunded at the end
    (a channel of [l] links crosses only [l − 1] switches), and Dijkstra
    does the rest.  Relaxation only enters switches holding at least 2
    free qubits, and never relays through user vertices, which
    implements the capacity filtering of Algorithm 1's line 11 and
    Definition 2's "path through vertices in R". *)

val edge_weight : Params.t -> Qnet_graph.Graph.edge -> float
(** The −log-space edge weight [alpha · L_e − ln q].  [infinity] when
    [q = 0.]. *)

val best_channel :
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  Channel.t option
(** Maximum-rate channel between users [src] and [dst] given residual
    switch capacities, or [None] when no capacity-feasible channel
    exists.  @raise Invalid_argument if either endpoint is not a user or
    [src = dst]. *)

val best_channels_from :
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  (int * Channel.t) list
(** One Dijkstra run from [src] yielding the best channel to {e every}
    other reachable user, as [(user, channel)] pairs in ascending user
    order — the paper's optimisation that drops the all-pairs phase of
    Algorithm 2 from [|U|²] to [|U|] Dijkstra runs. *)

val all_pairs_best :
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  users:int list ->
  Channel.t list
(** Best channels for all unordered user pairs (omitting unreachable
    pairs), deduplicated, in no particular order. *)
