let check_fidelity name f =
  if Float.is_nan f || f < 0. || f > 1. then
    invalid_arg (name ^ ": fidelity outside [0, 1]")

let purify_once f =
  check_fidelity "Purification.purify_once" f;
  let g = 1. -. f in
  let p_succ = (f *. f) +. (2. *. f *. g /. 3.) +. (5. *. g *. g /. 9.) in
  let f' = ((f *. f) +. (g *. g /. 9.)) /. p_succ in
  (f', p_succ)

let purify_rounds f ~rounds =
  if rounds < 0 then invalid_arg "Purification.purify_rounds: negative rounds";
  let rec go f mult remaining =
    if remaining = 0 then (f, mult)
    else begin
      let f', p_succ = purify_once f in
      go f' (mult *. p_succ /. 2.) (remaining - 1)
    end
  in
  go f 1. rounds

let rounds_needed ~f ~threshold ~max_rounds =
  check_fidelity "Purification.rounds_needed" f;
  check_fidelity "Purification.rounds_needed" threshold;
  if max_rounds < 0 then
    invalid_arg "Purification.rounds_needed: negative max_rounds";
  let rec scan f rounds =
    if f >= threshold then Some rounds
    else if rounds >= max_rounds then None
    else begin
      let f', _ = purify_once f in
      (* BBPSSW improves fidelity only above 1/2; below that it cycles
         or degrades, so bail out once progress stops. *)
      if f' <= f then None else scan f' (rounds + 1)
    end
  in
  scan f 0

type plan = { rounds : int; final_fidelity : float; rate_multiplier : float }

let plan_for_channel ~f0 ~hops ~threshold ~max_rounds =
  let f = Fidelity.channel_fidelity ~f0 ~hops in
  match rounds_needed ~f ~threshold ~max_rounds with
  | None -> None
  | Some rounds ->
      let final_fidelity, rate_multiplier = purify_rounds f ~rounds in
      Some { rounds; final_fidelity; rate_multiplier }

let effective_tree_rate ~f0 ~threshold ~max_rounds (tree : Ent_tree.t) =
  let rec fold acc = function
    | [] -> Some acc
    | (c : Channel.t) :: rest -> (
        match plan_for_channel ~f0 ~hops:c.hops ~threshold ~max_rounds with
        | None -> None
        | Some plan ->
            fold (acc *. Channel.rate_prob c *. plan.rate_multiplier) rest)
  in
  fold 1. tree.channels
