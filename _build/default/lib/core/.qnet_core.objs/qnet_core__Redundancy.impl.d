lib/core/redundancy.ml: Alg_conflict_free Capacity Channel Ent_tree Float Hashtbl List Qnet_graph Qnet_util Routing
