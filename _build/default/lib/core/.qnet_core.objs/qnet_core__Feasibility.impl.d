lib/core/feasibility.ml: Alg_optimal Exact Qnet_graph
