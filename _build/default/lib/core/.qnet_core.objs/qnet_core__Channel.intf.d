lib/core/channel.mli: Format Params Qnet_graph Qnet_util
