lib/core/routing.ml: Capacity Channel List Params Qnet_graph
