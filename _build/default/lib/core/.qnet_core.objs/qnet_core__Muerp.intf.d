lib/core/muerp.mli: Ent_tree Params Qnet_graph Qnet_util
