lib/core/alg_prim.mli: Ent_tree Params Qnet_graph Qnet_util
