lib/core/ent_tree.ml: Channel Format Hashtbl List Qnet_graph Qnet_util
