lib/core/alg_optimal.ml: Capacity Channel Ent_tree List Qnet_graph Qnet_util Routing
