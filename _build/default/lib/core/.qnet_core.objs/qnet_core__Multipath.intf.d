lib/core/multipath.mli: Capacity Channel Params Qnet_graph
