lib/core/swap_policy.mli: Channel Params Qnet_graph Qnet_util
