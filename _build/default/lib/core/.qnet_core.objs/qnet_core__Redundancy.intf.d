lib/core/redundancy.mli: Channel Ent_tree Params Qnet_graph
