lib/core/verify.ml: Channel Ent_tree Float Format List Qnet_graph Qnet_util
