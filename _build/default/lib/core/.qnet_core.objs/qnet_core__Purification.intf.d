lib/core/purification.mli: Ent_tree
