lib/core/purification.ml: Channel Ent_tree Fidelity Float
