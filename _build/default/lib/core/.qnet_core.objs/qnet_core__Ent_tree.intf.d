lib/core/ent_tree.mli: Channel Format Qnet_util
