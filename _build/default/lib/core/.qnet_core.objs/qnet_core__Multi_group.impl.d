lib/core/multi_group.ml: Capacity Channel Ent_tree Float Hashtbl List Qnet_graph Qnet_util Routing
