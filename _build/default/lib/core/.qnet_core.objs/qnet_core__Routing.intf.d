lib/core/routing.mli: Capacity Channel Params Qnet_graph
