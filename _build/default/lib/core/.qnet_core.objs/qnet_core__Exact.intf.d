lib/core/exact.mli: Ent_tree Params Qnet_graph
