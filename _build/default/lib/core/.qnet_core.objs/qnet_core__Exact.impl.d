lib/core/exact.ml: Array Capacity Channel Ent_tree Float Hashtbl List Qnet_graph Qnet_util
