lib/core/alg_prim.ml: Array Capacity Channel Ent_tree Hashtbl List Qnet_graph Qnet_util Routing
