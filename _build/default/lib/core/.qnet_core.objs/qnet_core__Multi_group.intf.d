lib/core/multi_group.mli: Capacity Ent_tree Params Qnet_graph
