lib/core/channel.ml: Float Format List Params Qnet_graph Qnet_util String
