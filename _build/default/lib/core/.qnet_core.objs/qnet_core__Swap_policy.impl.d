lib/core/swap_policy.ml: Array Channel List Params Qnet_graph Qnet_util
