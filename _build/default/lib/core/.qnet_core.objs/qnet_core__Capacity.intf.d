lib/core/capacity.mli: Qnet_graph
