lib/core/alg_conflict_free.mli: Channel Ent_tree Params Qnet_graph
