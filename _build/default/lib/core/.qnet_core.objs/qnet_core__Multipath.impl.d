lib/core/multipath.ml: Array Capacity Channel Float Hashtbl List Params Qnet_graph Qnet_util Routing
