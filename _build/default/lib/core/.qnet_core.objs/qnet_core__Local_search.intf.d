lib/core/local_search.mli: Ent_tree Params Qnet_graph
