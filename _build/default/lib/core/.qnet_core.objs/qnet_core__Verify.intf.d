lib/core/verify.mli: Channel Ent_tree Format Params Qnet_graph
