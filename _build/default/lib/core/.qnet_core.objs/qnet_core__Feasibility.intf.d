lib/core/feasibility.mli: Exact Params Qnet_graph
