lib/core/local_search.ml: Alg_conflict_free Capacity Channel Ent_tree List Qnet_graph Qnet_util Routing
