lib/core/fidelity.mli: Capacity Channel Ent_tree Params Qnet_graph
