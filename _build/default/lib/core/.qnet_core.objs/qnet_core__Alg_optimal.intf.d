lib/core/alg_optimal.mli: Channel Ent_tree Params Qnet_graph
