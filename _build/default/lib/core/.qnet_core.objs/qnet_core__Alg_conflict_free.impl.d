lib/core/alg_conflict_free.ml: Alg_optimal Capacity Channel Ent_tree List Qnet_graph Qnet_util Routing
