lib/core/params.mli:
