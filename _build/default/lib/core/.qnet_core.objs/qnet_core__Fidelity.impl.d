lib/core/fidelity.ml: Alg_optimal Array Capacity Channel Ent_tree Float Hashtbl List Params Qnet_graph Qnet_util Routing
