lib/core/alg_kbest.ml: Alg_optimal Capacity Channel Ent_tree List Multipath Qnet_graph Qnet_util Routing
