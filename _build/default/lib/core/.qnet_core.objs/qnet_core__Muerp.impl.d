lib/core/muerp.ml: Alg_conflict_free Alg_optimal Alg_prim Ent_tree Exact Format List Option Params Qnet_graph Unix Verify
