lib/core/alg_kbest.mli: Ent_tree Params Qnet_graph
