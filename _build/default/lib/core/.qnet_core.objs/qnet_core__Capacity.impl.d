lib/core/capacity.ml: Array List Qnet_graph
