(** Redundant parallel channels — relaxing "one channel per user pair".

    The paper's model (§II-D) restricts each user pair to a single
    quantum channel and names concurrent/parallel variants as a model
    extension.  This module implements the natural one: after an
    entanglement tree is routed, leftover switch qubits are spent on
    {e backup channels} for the tree's weakest edges.  A tree edge
    backed by channels with rates [p₁ … p_w] succeeds when {e any} of
    them does — probability [1 − Π (1 − p_i)] — so the Eq. (2) product
    becomes

      [P = Π_edges (1 − Π_i (1 − p_i))]

    which strictly improves on the single-channel rate whenever any
    backup fits.  Backups are allocated greedily: repeatedly find the
    best capacity-feasible extra channel for the tree edge whose
    current success probability is lowest, until no backup fits or the
    budget of extra channels runs out. *)

type edge_group = {
  endpoints : int * int;  (** The user pair of this tree edge. *)
  channels : Channel.t list;  (** Primary first, then backups, each
                                  qubit-disjoint in switch accounting. *)
  success_neg_log : float;  (** [−ln (1 − Π (1 − p_i))]. *)
}

type t = {
  groups : edge_group list;
  rate : float;  (** The boosted Eq. (2) analogue, as probability. *)
  neg_log_rate : float;
  backups_added : int;
}

val group_success_neg_log : Channel.t list -> float
(** [−ln (1 − Π (1 − p_i))] over the channels' Eq. (1) rates;
    [infinity] for the empty list. *)

val boost :
  ?max_backups:int ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Ent_tree.t ->
  t
(** [boost g params tree] reinforces an existing (capacity-valid) tree
    with up to [max_backups] (default unlimited) extra channels drawn
    from the capacity left over after the tree's own consumption.
    Backups must route through at least one switch — an interior-free
    direct fiber costs no qubits and could be duplicated forever, which
    would degenerately drive the rate to 1 (the model already treats a
    fiber's cores as a single per-slot link attempt).  The result's
    aggregate switch usage always stays within budgets, and its [rate]
    is ≥ the tree's Eq. (2) rate.
    @raise Invalid_argument if the tree itself already violates some
    switch budget. *)

val solve :
  ?max_backups:int ->
  Qnet_graph.Graph.t ->
  Params.t ->
  t option
(** Route with Algorithm 3, then {!boost} the result.  [None] when the
    base problem is infeasible. *)

val qubit_usage : t -> (int * int) list
(** Aggregate per-switch qubit consumption over every channel (primary
    and backup), ascending by switch id. *)
