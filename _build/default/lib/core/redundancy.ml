module Graph = Qnet_graph.Graph
module Logprob = Qnet_util.Logprob

type edge_group = {
  endpoints : int * int;
  channels : Channel.t list;
  success_neg_log : float;
}

type t = {
  groups : edge_group list;
  rate : float;
  neg_log_rate : float;
  backups_added : int;
}

(* 1 - prod (1 - p_i) computed stably: each (1 - p_i) is fine in linear
   space (p_i bounded away from 1 only helps), and the complement's log
   uses log1p. *)
let group_success_neg_log channels =
  match channels with
  | [] -> infinity
  | _ ->
      let log_all_fail =
        List.fold_left
          (fun acc (c : Channel.t) ->
            let p = Channel.rate_prob c in
            if p >= 1. then neg_infinity else acc +. log1p (-.p))
          0. channels
      in
      if log_all_fail = neg_infinity then 0.
      else begin
        let all_fail = exp log_all_fail in
        if all_fail >= 1. then infinity else -.log1p (-.all_fail)
      end

let rebuild_group endpoints channels =
  { endpoints; channels; success_neg_log = group_success_neg_log channels }

let summarise groups backups_added =
  let neg_log_rate =
    List.fold_left (fun acc g -> acc +. g.success_neg_log) 0. groups
  in
  {
    groups;
    rate = (if neg_log_rate = infinity then 0. else exp (-.neg_log_rate));
    neg_log_rate;
    backups_added;
  }

let boost ?(max_backups = max_int) g params (tree : Ent_tree.t) =
  let capacity = Capacity.of_graph g in
  (* Charge the tree's own channels; raises if the tree is invalid. *)
  List.iter
    (fun (c : Channel.t) ->
      try Capacity.consume_channel capacity c.path
      with Invalid_argument _ ->
        invalid_arg "Redundancy.boost: tree exceeds switch budgets")
    tree.channels;
  let groups =
    ref
      (List.map
         (fun (c : Channel.t) -> rebuild_group (Channel.endpoints c) [ c ])
         tree.channels)
  in
  let backups = ref 0 in
  let continue = ref (max_backups > 0) in
  while !continue do
    (* Weakest group first. *)
    let sorted =
      List.sort
        (fun g1 g2 -> Float.compare g2.success_neg_log g1.success_neg_log)
        !groups
    in
    (* Try groups from weakest to strongest until one accepts a backup. *)
    let rec attempt = function
      | [] -> false
      | group :: rest -> (
          let src, dst = group.endpoints in
          match Routing.best_channel g params ~capacity ~src ~dst with
          | None -> attempt rest
          | Some backup ->
              (* A backup must pin switch qubits: a zero-cost direct
                 fiber could be "added" forever (free cores), which
                 degenerates.  It must also have positive rate. *)
              if
                Channel.interior_switches backup = []
                || Channel.rate_prob backup <= 0.
              then attempt rest
              else begin
                Capacity.consume_channel capacity backup.path;
                groups :=
                  List.map
                    (fun g' ->
                      if g'.endpoints = group.endpoints then
                        rebuild_group g'.endpoints (g'.channels @ [ backup ])
                      else g')
                    !groups;
                incr backups;
                true
              end)
    in
    if not (attempt sorted) then continue := false
    else if !backups >= max_backups then continue := false
  done;
  summarise !groups !backups

let solve ?max_backups g params =
  match Alg_conflict_free.solve g params with
  | None -> None
  | Some tree -> Some (boost ?max_backups g params tree)

let qubit_usage t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun group ->
      List.iter
        (fun c ->
          List.iter
            (fun s ->
              Hashtbl.replace tbl s
                (2 + (try Hashtbl.find tbl s with Not_found -> 0)))
            (Channel.interior_switches c))
        group.channels)
    t.groups;
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl [] |> List.sort compare
