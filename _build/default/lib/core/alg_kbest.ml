module Graph = Qnet_graph.Graph
module Union_find = Qnet_graph.Union_find
module Logprob = Qnet_util.Logprob

let channel_feasible capacity (c : Channel.t) =
  List.for_all
    (fun s -> Capacity.remaining capacity s >= 2)
    (Channel.interior_switches c)

let solve ?(k = 3) g params =
  if k < 1 then invalid_arg "Alg_kbest.solve: k < 1";
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | _ ->
      (* Pool the k best candidates of every unordered user pair. *)
      let fresh = Capacity.of_graph g in
      let rec pairs = function
        | [] -> []
        | u :: rest ->
            List.concat_map
              (fun v ->
                Multipath.k_best_channels g params ~capacity:fresh ~src:u
                  ~dst:v ~k)
              rest
            @ pairs rest
      in
      let pool = List.sort Alg_optimal.compare_channels (pairs users) in
      let capacity = Capacity.of_graph g in
      let uf = Union_find.create (Graph.vertex_count g) in
      let kept =
        List.fold_left
          (fun acc (c : Channel.t) ->
            if
              (not (Union_find.same uf c.src c.dst))
              && channel_feasible capacity c
            then begin
              Capacity.consume_channel capacity c.path;
              ignore (Union_find.union uf c.src c.dst);
              c :: acc
            end
            else acc)
          [] pool
      in
      (* Reconnection pass, as in Algorithm 3, for anything left. *)
      let rec reconnect acc =
        if Union_find.all_same uf users then Some acc
        else begin
          let best = ref None in
          List.iter
            (fun src ->
              Routing.best_channels_from g params ~capacity ~src
              |> List.iter (fun (_, (c : Channel.t)) ->
                     if not (Union_find.same uf c.src c.dst) then
                       match !best with
                       | Some (b : Channel.t)
                         when Logprob.compare_desc b.rate c.rate <= 0 ->
                           ()
                       | _ -> best := Some c))
            users;
          match !best with
          | None -> None
          | Some c ->
              Capacity.consume_channel capacity c.path;
              ignore (Union_find.union uf c.src c.dst);
              reconnect (c :: acc)
        end
      in
      (match reconnect [] with
      | None -> None
      | Some extra ->
          Some (Ent_tree.of_channels (List.rev_append kept (List.rev extra))))
