(** Local-search post-optimisation of entanglement trees.

    The paper's heuristics are single-pass greedy constructions; a
    cheap improvement loop on top is the natural next step (and a
    standard one for degree-constrained spanning-tree heuristics, cf.
    the DCMST literature the hardness proofs cite).  The move here is
    the classic tree {e edge exchange} adapted to channels:

    + pick a channel of the current tree and remove it — the users
      split into two components, and the channel's switch qubits are
      refunded;
    + route the best capacity-feasible channel between {e any} user
      pair across the two components (Algorithm 1 under the residual
      capacity);
    + keep the exchange iff it strictly improves the Eq. (2) rate,
      else restore the original channel.

    Iterating to a fixed point yields a 1-exchange-optimal tree.  Every
    intermediate state respects switch capacities. *)

type stats = {
  iterations : int;  (** Improvement rounds executed. *)
  exchanges : int;  (** Accepted channel exchanges. *)
  initial_neg_log : float;
  final_neg_log : float;
}

val improve :
  ?max_rounds:int ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Ent_tree.t ->
  Ent_tree.t * stats
(** Run first-improvement edge exchange to a fixed point (or
    [max_rounds], default 50).  The input tree must respect switch
    capacities ([Invalid_argument] otherwise).  The result's rate is
    ≥ the input's. *)

val solve :
  ?max_rounds:int -> Qnet_graph.Graph.t -> Params.t -> Ent_tree.t option
(** Algorithm 3 followed by {!improve}; [None] when Algorithm 3 finds
    no tree. *)
