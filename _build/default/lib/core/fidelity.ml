module Graph = Qnet_graph.Graph
module Heap = Qnet_graph.Binary_heap
module Union_find = Qnet_graph.Union_find
module Logprob = Qnet_util.Logprob

let check_fidelity name f =
  if Float.is_nan f || f < 0. || f > 1. then
    invalid_arg (name ^ ": fidelity outside [0, 1]")

let werner_swap f1 f2 =
  check_fidelity "Fidelity.werner_swap" f1;
  check_fidelity "Fidelity.werner_swap" f2;
  (f1 *. f2) +. ((1. -. f1) *. (1. -. f2) /. 3.)

let channel_fidelity ~f0 ~hops =
  check_fidelity "Fidelity.channel_fidelity" f0;
  if hops < 1 then invalid_arg "Fidelity.channel_fidelity: hops < 1";
  let rec fold acc remaining =
    if remaining = 0 then acc else fold (werner_swap acc f0) (remaining - 1)
  in
  fold f0 (hops - 1)

let max_hops ~f0 ~threshold ~max_considered =
  if max_considered < 1 then
    invalid_arg "Fidelity.max_hops: max_considered < 1";
  let rec scan best h =
    if h > max_considered then best
    else if channel_fidelity ~f0 ~hops:h >= threshold then scan (Some h) (h + 1)
    else best
    (* Fidelity decays monotonically in hops, so the first failure is
       final; stopping at it keeps the scan exact. *)
  in
  scan None 1

(* Hop-layered Dijkstra: state (vertex, hops used).  The admission rules
   are Routing's: only capacity-holding switches relay, users terminate. *)
let best_channel_bounded g params ~capacity ~src ~dst ~max_hops =
  if not (Graph.is_user g src && Graph.is_user g dst) then
    invalid_arg "Fidelity.best_channel_bounded: endpoints must be users";
  if src = dst then invalid_arg "Fidelity.best_channel_bounded: src = dst";
  if max_hops < 1 then invalid_arg "Fidelity.best_channel_bounded: max_hops < 1";
  if params.Params.q = 0. then begin
    (* Only a direct fiber survives q = 0 (cf. Routing). *)
    match Graph.find_edge g src dst with
    | None -> None
    | Some _ -> (
        match Channel.make g params [ src; dst ] with
        | Ok c -> Some c
        | Error _ -> None)
  end
  else begin
    let n = Graph.vertex_count g in
    let h = max_hops in
    let idx v hops = (v * (h + 1)) + hops in
    let dist = Array.make (n * (h + 1)) infinity in
    let prev = Array.make (n * (h + 1)) (-1) in
    let settled = Array.make (n * (h + 1)) false in
    let heap = Heap.create ~capacity:(n + 1) () in
    dist.(idx src 0) <- 0.;
    Heap.push heap 0. (src, 0);
    let admissible v = v = dst || (Graph.is_switch g v && Capacity.can_relay capacity v) in
    let expandable v = v = src || Graph.is_switch g v in
    let rec loop () =
      match Heap.pop_min heap with
      | None -> ()
      | Some (d, (v, hops)) ->
          let i = idx v hops in
          if (not settled.(i)) && d <= dist.(i) then begin
            settled.(i) <- true;
            if hops < h && expandable v then
              List.iter
                (fun (w, eid) ->
                  if admissible w then begin
                    let e = Graph.edge g eid in
                    let cand = d +. Routing.edge_weight params e in
                    let j = idx w (hops + 1) in
                    if cand < dist.(j) then begin
                      dist.(j) <- cand;
                      prev.(j) <- i;
                      Heap.push heap cand (w, hops + 1)
                    end
                  end)
                (Graph.neighbors g v)
          end;
          loop ()
    in
    loop ();
    (* Best layer at the destination. *)
    let best = ref None in
    for hops = 1 to h do
      let i = idx dst hops in
      if dist.(i) < infinity then
        match !best with
        | Some (d, _) when d <= dist.(i) -> ()
        | _ -> best := Some (dist.(i), i)
    done;
    match !best with
    | None -> None
    | Some (_, i) ->
        let rec walk i acc =
          let v = i / (h + 1) in
          if prev.(i) < 0 then v :: acc else walk prev.(i) (v :: acc)
        in
        let path = walk i [] in
        (match Channel.make g params path with Ok c -> Some c | Error _ -> None)
  end

type config = { f0 : float; threshold : float }

let hop_budget config =
  check_fidelity "Fidelity.solve" config.f0;
  check_fidelity "Fidelity.solve" config.threshold;
  max_hops ~f0:config.f0 ~threshold:config.threshold ~max_considered:64

let all_pairs_bounded g params ~capacity ~bound users =
  let rec pairs = function
    | [] -> []
    | u :: rest ->
        List.filter_map
          (fun v ->
            best_channel_bounded g params ~capacity ~src:u ~dst:v
              ~max_hops:bound)
          rest
        @ pairs rest
  in
  pairs users

let channel_feasible capacity (c : Channel.t) =
  List.for_all
    (fun s -> Capacity.remaining capacity s >= 2)
    (Channel.interior_switches c)

let solve_kruskal g params config =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | _ -> (
      match hop_budget config with
      | None -> None
      | Some bound ->
          let capacity = Capacity.of_graph g in
          let uf = Union_find.create (Graph.vertex_count g) in
          let candidates =
            all_pairs_bounded g params ~capacity ~bound users
            |> List.sort Alg_optimal.compare_channels
          in
          let kept =
            List.fold_left
              (fun acc (c : Channel.t) ->
                if
                  (not (Union_find.same uf c.src c.dst))
                  && channel_feasible capacity c
                then begin
                  Capacity.consume_channel capacity c.path;
                  ignore (Union_find.union uf c.src c.dst);
                  c :: acc
                end
                else acc)
              [] candidates
          in
          (* Reconnect any unions the capacity deductions split apart. *)
          let rec reconnect acc =
            if Union_find.all_same uf users then Some acc
            else begin
              let best = ref None in
              let rec scan_pairs = function
                | [] -> ()
                | u :: rest ->
                    List.iter
                      (fun v ->
                        if not (Union_find.same uf u v) then
                          match
                            best_channel_bounded g params ~capacity ~src:u
                              ~dst:v ~max_hops:bound
                          with
                          | None -> ()
                          | Some c -> (
                              match !best with
                              | Some (b : Channel.t)
                                when Logprob.compare_desc b.rate c.rate <= 0 ->
                                  ()
                              | _ -> best := Some c))
                      rest;
                    scan_pairs rest
              in
              scan_pairs users;
              match !best with
              | None -> None
              | Some c ->
                  Capacity.consume_channel capacity c.path;
                  ignore (Union_find.union uf c.src c.dst);
                  reconnect (c :: acc)
            end
          in
          (match reconnect [] with
          | None -> None
          | Some extra ->
              Some (Ent_tree.of_channels (List.rev_append kept (List.rev extra)))))

let solve_prim ?start g params config =
  let users = Graph.users g in
  match users with
  | [] | [ _ ] -> Some (Ent_tree.of_channels [])
  | first :: _ -> (
      match hop_budget config with
      | None -> None
      | Some bound ->
          let start =
            match start with
            | Some s ->
                if not (Graph.is_user g s) then
                  invalid_arg "Fidelity.solve_prim: start is not a user";
                s
            | None -> first
          in
          let capacity = Capacity.of_graph g in
          let inside = Hashtbl.create (List.length users) in
          Hashtbl.replace inside start ();
          let remaining = ref (List.length users - 1) in
          let rec grow acc =
            if !remaining = 0 then Some (Ent_tree.of_channels (List.rev acc))
            else begin
              let best = ref None in
              Hashtbl.iter
                (fun src () ->
                  List.iter
                    (fun dst ->
                      if not (Hashtbl.mem inside dst) then
                        match
                          best_channel_bounded g params ~capacity ~src ~dst
                            ~max_hops:bound
                        with
                        | None -> ()
                        | Some c -> (
                            match !best with
                            | Some (b : Channel.t)
                              when Logprob.compare_desc b.rate c.rate <= 0 ->
                                ()
                            | _ -> best := Some c))
                    users)
                inside;
              match !best with
              | None -> None
              | Some c ->
                  Capacity.consume_channel capacity c.path;
                  let fresh =
                    if Hashtbl.mem inside c.src then c.dst else c.src
                  in
                  Hashtbl.replace inside fresh ();
                  decr remaining;
                  grow (c :: acc)
            end
          in
          grow [])

let tree_min_fidelity ~f0 (tree : Ent_tree.t) =
  List.fold_left
    (fun acc (c : Channel.t) ->
      Float.min acc (channel_fidelity ~f0 ~hops:c.hops))
    1. tree.channels
