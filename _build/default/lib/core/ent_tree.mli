(** Entanglement trees (Definition 1) and their Eq. (2) value.

    A set of quantum channels entangles the user set iff the channels
    form a tree over the users — exactly [|U| − 1] channels whose
    endpoint pairs connect all users acyclically.  The tree's
    entanglement rate is the product of its channels' rates: every
    channel must succeed simultaneously. *)

type t = private {
  channels : Channel.t list;
  rate : Qnet_util.Logprob.t;  (** Eq. (2) in negative-log space. *)
}

val of_channels : Channel.t list -> t
(** Package channels and compute the product rate.  No structural
    checks — see {!Verify.check} for full validation; this constructor
    only aggregates. *)

val rate_prob : t -> float
(** Eq. (2) as a plain probability (may underflow to 0. for reporting —
    use {!rate_neg_log} when precision matters). *)

val rate_neg_log : t -> float
(** [−ln] of the Eq. (2) rate. *)

val channel_count : t -> int

val spans_users : t -> int list -> bool
(** [spans_users t users] checks the Definition 1 structure: exactly
    [|users| − 1] channels, every endpoint in [users], and the endpoint
    pairs connect all of [users] without redundancy (tree, not just
    connected). *)

val qubit_usage : t -> (int * int) list
(** [(switch_id, qubits_consumed)] across all channels, ascending by
    switch id.  Each traversal of a switch consumes 2 qubits. *)

val touches : t -> int -> bool
(** Whether any channel of the tree routes through or ends at the given
    vertex. *)

val pp : Format.formatter -> t -> unit
