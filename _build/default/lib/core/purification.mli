(** Entanglement purification (BBPSSW recurrence) — rate/fidelity
    trading.

    Fidelity-aware related work the paper builds on (references [18],
    [19]) pairs routing with {e purification}: sacrificing entangled
    pairs to distill fewer, higher-fidelity ones.  This module
    implements the BBPSSW/DEJMPS recurrence for Werner states:

    two pairs of fidelity [F] yield, on success, one pair of fidelity

      [F' = (F² + (1−F)²/9) / (F² + 2F(1−F)/3 + 5(1−F)²/9)]

    where the denominator is the success probability of the purification
    round.  Each round therefore halves the pair rate {e at least}
    (costing a factor [2/p_succ]) while boosting fidelity toward 1 (for
    [F > 1/2]).

    Combined with {!Fidelity}, this answers: "how many purification
    rounds does a channel of [h] links need to clear a fidelity
    threshold, and what does that do to its effective rate?" *)

val purify_once : float -> float * float
(** [purify_once f] is [(f', p_succ)] for one BBPSSW round on two
    Werner pairs of fidelity [f].  @raise Invalid_argument outside
    [\[0, 1\]]. *)

val purify_rounds : float -> rounds:int -> float * float
(** [purify_rounds f ~rounds] iterates {!purify_once}: resulting
    fidelity and the {e rate multiplier} — the factor by which the
    usable pair rate shrinks, [Π (p_succ_i / 2)] over rounds (each
    round consumes two pairs and succeeds with [p_succ_i]).
    [rounds = 0] is [(f, 1.)]. *)

val rounds_needed :
  f:float -> threshold:float -> max_rounds:int -> int option
(** Minimum purification rounds taking fidelity [f] to [threshold], or
    [None] if [max_rounds] do not suffice (purification converges below
    1, so some thresholds are unreachable). *)

type plan = {
  rounds : int;  (** Purification rounds applied per channel pair. *)
  final_fidelity : float;
  rate_multiplier : float;  (** Multiply the channel's Eq. (1) rate by
                                this. *)
}

val plan_for_channel :
  f0:float -> hops:int -> threshold:float -> max_rounds:int -> plan option
(** End-to-end plan for a channel of [hops] links at link fidelity
    [f0]: purify the {e end-to-end} pair (post-swap fidelity from
    {!Fidelity.channel_fidelity}) until it clears [threshold].  [None]
    when unreachable within [max_rounds]. *)

val effective_tree_rate :
  f0:float -> threshold:float -> max_rounds:int -> Ent_tree.t -> float option
(** The tree's Eq. (2) rate after multiplying in each channel's
    purification cost; [None] if any channel cannot reach the
    threshold. *)
