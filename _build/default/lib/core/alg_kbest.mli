(** k-candidate conflict resolution — an alternative to Algorithm 3
    built on {!Multipath}.

    Algorithm 3 resolves switch-capacity conflicts by re-running
    Algorithm 1 between leftover unions after greedy selection.  This
    variant instead pre-computes the [k] best channels per user pair
    (Yen enumeration) and runs one Kruskal pass over the {e pooled}
    candidate list in descending rate order, accepting a channel only
    when its switches still have qubits: a conflicted pair simply falls
    through to its next-ranked candidate.  A final Algorithm-1
    reconnection pass covers pairs whose k candidates all died.

    With [k = 1] this degenerates to Algorithm 3's structure; larger
    [k] trades precomputation for fewer reroutes.  The ablation bench
    compares both against Algorithm 3 directly. *)

val solve :
  ?k:int -> Qnet_graph.Graph.t -> Params.t -> Ent_tree.t option
(** Run the k-candidate solver (default [k = 3]).  The result always
    respects switch capacities; [None] when the users cannot be
    spanned.  @raise Invalid_argument on [k < 1]. *)
