(** Exhaustive MUERP solver for small instances.

    MUERP is NP-hard (Theorem 2), so no polynomial exact algorithm is
    expected — but tiny instances can be solved by brute force:
    enumerate every labelled tree shape over the users (Prüfer
    sequences, [|U|^(|U|−2)] shapes) and, for each shape, backtrack over
    simple-path assignments for its channels under residual switch
    capacity, maximising the Eq. (2) product.

    Tests use this as ground truth: Algorithm 2 must match it whenever
    the sufficient condition holds, and the heuristics must never beat
    it.  Cost grows explosively; guard rails reject instances beyond the
    configured bounds. *)

type bounds = {
  max_users : int;  (** Reject instances with more users (default 5). *)
  max_vertices : int;  (** Reject larger graphs (default 14). *)
  max_path_hops : int;  (** Ignore channel paths longer than this
                            (default 8 links). *)
}

val default_bounds : bounds

val prufer_trees : int -> (int * int) list list
(** [prufer_trees k] is every labelled tree on vertices [0 .. k−1] as an
    edge list, via Prüfer decoding ([k^(k−2)] trees; [k ≤ 1] gives one
    empty tree).  @raise Invalid_argument for [k > 7] (guard against
    accidental blow-up) or negative [k]. *)

val all_simple_paths :
  Qnet_graph.Graph.t ->
  src:int ->
  dst:int ->
  max_hops:int ->
  int list list
(** Every simple path between two users whose interior crosses only
    switches, up to the hop bound. *)

val solve :
  ?bounds:bounds -> Qnet_graph.Graph.t -> Params.t -> Ent_tree.t option
(** The true optimum, or [None] when infeasible {e within the path-hop
    bound}.  @raise Invalid_argument when the instance exceeds
    [bounds]. *)
