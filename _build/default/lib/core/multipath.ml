module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Logprob = Qnet_util.Logprob

let edge_key (u, v) = if u <= v then (u, v) else (v, u)

(* One constrained shortest-path query from [src] (a user or a spur
   switch) to the user [dst]: banned edges and banned vertices come from
   Yen's deviation bookkeeping.  Returns a raw vertex path. *)
let constrained_path g params ~capacity ~src ~dst ~banned_edges
    ~banned_vertices =
  let weight (e : Graph.edge) =
    if Hashtbl.mem banned_edges (edge_key (e.a, e.b)) then infinity
    else Routing.edge_weight params e
  in
  let admit v =
    (not (Hashtbl.mem banned_vertices v))
    &&
    if Graph.is_user g v then v = dst else Capacity.can_relay capacity v
  in
  let expand v = Graph.is_switch g v in
  let result = Paths.dijkstra g ~source:src ~weight ~admit ~expand () in
  if result.Paths.dist.(dst) = infinity then None
  else Paths.extract_path result ~source:src ~target:dst

(* q = 0 degenerates to "direct fiber or nothing" (cf. Routing), so the
   k-best list has at most one element. *)
let direct_or_nothing g params ~src ~dst =
  match Graph.find_edge g src dst with
  | None -> []
  | Some _ -> (
      match Channel.make g params [ src; dst ] with
      | Ok c -> [ c ]
      | Error _ -> [])

let compare_candidates (c1 : Channel.t) (c2 : Channel.t) =
  let by_rate = Logprob.compare_desc c1.rate c2.rate in
  if by_rate <> 0 then by_rate else compare c1.path c2.path

let k_best_channels g params ~capacity ~src ~dst ~k =
  if not (Graph.is_user g src && Graph.is_user g dst) then
    invalid_arg "Multipath.k_best_channels: endpoints must be users";
  if src = dst then invalid_arg "Multipath.k_best_channels: src = dst";
  if k < 1 then invalid_arg "Multipath.k_best_channels: k < 1";
  if params.Params.q = 0. then direct_or_nothing g params ~src ~dst
  else begin
    let fresh_bans () = (Hashtbl.create 8, Hashtbl.create 8) in
    let first_path =
      let banned_edges, banned_vertices = fresh_bans () in
      constrained_path g params ~capacity ~src ~dst ~banned_edges
        ~banned_vertices
    in
    match first_path with
    | None -> []
    | Some p0 ->
        (* Work on raw src->dst paths; build channels at the end. *)
        let accepted = ref [ p0 ] in
        let candidates = ref [] in
        let seen = Hashtbl.create 16 in
        Hashtbl.replace seen p0 ();
        let path_neg_log p =
          match Channel.make g params p with
          | Ok c -> Logprob.to_neg_log c.rate
          | Error _ -> infinity
        in
        let compare_paths p1 p2 =
          let c = Float.compare (path_neg_log p1) (path_neg_log p2) in
          if c <> 0 then c else compare p1 p2
        in
        let add_candidate p =
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.replace seen p ();
            candidates := p :: !candidates
          end
        in
        let rec take_prefix n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take_prefix (n - 1) rest
        in
        let rec shares_root root p =
          match (root, p) with
          | [], _ -> true
          | x :: r', y :: p' -> x = y && shares_root r' p'
          | _, [] -> false
        in
        let rec rounds () =
          if List.length !accepted >= k then ()
          else begin
            let last = Array.of_list (List.hd !accepted) in
            for i = 0 to Array.length last - 2 do
              let spur = last.(i) in
              let root = take_prefix (i + 1) (Array.to_list last) in
              let banned_edges, banned_vertices = fresh_bans () in
              List.iter
                (fun p ->
                  if shares_root root p then
                    let arr = Array.of_list p in
                    if Array.length arr > i + 1 then
                      Hashtbl.replace banned_edges
                        (edge_key (arr.(i), arr.(i + 1)))
                        ())
                (!accepted @ !candidates);
              List.iteri
                (fun j v ->
                  if j < i then Hashtbl.replace banned_vertices v ())
                root;
              (match
                 constrained_path g params ~capacity ~src:spur ~dst
                   ~banned_edges ~banned_vertices
               with
              | None -> ()
              | Some tail ->
                  let full = root @ List.tl tail in
                  if Paths.path_is_valid g full then
                    match Channel.make g params full with
                    | Ok _ -> add_candidate full
                    | Error _ -> ())
            done;
            match List.sort compare_paths !candidates with
            | [] -> ()
            | best :: rest ->
                candidates := rest;
                accepted := best :: !accepted;
                rounds ()
          end
        in
        rounds ();
        List.filter_map
          (fun p ->
            match Channel.make g params p with Ok c -> Some c | Error _ -> None)
          !accepted
        |> List.sort compare_candidates
  end

let channels_vertex_disjoint (c1 : Channel.t) (c2 : Channel.t) =
  let s1 = Channel.interior_switches c1 in
  let s2 = Channel.interior_switches c2 in
  not (List.exists (fun v -> List.mem v s2) s1)
