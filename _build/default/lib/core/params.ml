type t = { alpha : float; q : float }

let default = { alpha = 1e-4; q = 0.9 }

let create ?(alpha = default.alpha) ?(q = default.q) () =
  if Float.is_nan alpha || alpha < 0. then
    invalid_arg "Params.create: alpha must be >= 0";
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Params.create: q must lie in [0, 1]";
  { alpha; q }

let link_success t length = exp (-.t.alpha *. length)
let link_neg_log t length = t.alpha *. length
let swap_neg_log t = if t.q = 0. then infinity else -.log t.q
