(** Entanglement-swapping order policies (swapping trees).

    Eq. (1) treats a channel as an all-or-nothing per-slot event.  With
    quantum memories, a channel is instead built {e incrementally}: the
    switches swap adjacent segments as they become available, following
    a binary {e swapping tree} over the channel's links — and the tree's
    shape changes the expected build time substantially (Ghaderibaneh
    et al., IEEE TQE 2022 — the paper's reference [17]).

    This module provides, for a routed {!Channel.t}:

    - swapping-tree constructors ({!balanced}, {!linear});
    - an analytic estimate of the expected slots to build the channel
      under a tree, using the standard exponential approximation
      [E(max(X,Y)) ≈ tx + ty − 1/(1/tx + 1/ty)] for the waiting time of
      two independent segments and a [1/q] restart factor per swap
      (both segments are consumed by a failed BSM);
    - an exact Monte-Carlo simulator of the same process with infinite
      memories, to validate the estimate.

    The synchronous model corresponds to rebuilding everything every
    slot; with memories even the worst policy beats it, and balanced
    trees beat linear chains increasingly with channel length. *)

type tree = Leaf of int | Node of tree * tree
(** A swapping tree over link indices [0 .. l−1]; [Node (a, b)] swaps
    the segments built by [a] and [b] (which must cover adjacent,
    contiguous link ranges). *)

val balanced : int -> tree
(** Balanced tree over [l ≥ 1] links (minimum depth).
    @raise Invalid_argument on [l < 1]. *)

val linear : int -> tree
(** Left-deep chain: swap link 0 with 1, the result with 2, … *)

val leaves : tree -> int list
(** Link indices in left-to-right order. *)

val validate : tree -> links:int -> (unit, string) result
(** Check the tree covers exactly [0 .. links−1] contiguously. *)

val expected_slots_estimate :
  Qnet_graph.Graph.t -> Params.t -> Channel.t -> tree -> float
(** Analytic expected slots to establish the channel under the tree
    (exponential approximation; exact for a single link: [1/p]).
    @raise Invalid_argument if the tree does not match the channel's
    link count. *)

val simulate_slots :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Params.t ->
  Channel.t ->
  tree ->
  runs:int ->
  max_slots:int ->
  float option
(** Mean slots over [runs] Monte-Carlo executions of the
    infinite-memory process: every slot, down elementary links attempt
    generation; any tree node whose two children are complete attempts
    its BSM (success promotes the parent, failure destroys both
    children's segments).  [None] if some run exceeds [max_slots]. *)
