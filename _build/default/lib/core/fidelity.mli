(** Fidelity-aware extension of MUERP.

    The paper's model statement (§II, §VII) names "accounting for
    fidelity decay" as the primary extension of the basic MUERP model;
    this module implements it for Werner states, the standard noise
    model in the entanglement-distribution literature (cf. the paper's
    references [18], [19]).

    Model: every elementary Bell pair is generated as a Werner state
    with fidelity [f0 > 1/4].  Swapping two Werner pairs with fidelities
    [F1] and [F2] yields fidelity

      [F' = F1·F2 + (1 − F1)·(1 − F2) / 3]

    (the singlet-fraction composition law for Werner states).  Fidelity
    therefore decays monotonically with the number of links in a
    channel, independent of which switches perform the swaps, so an
    end-to-end requirement [F ≥ threshold] is exactly a per-channel hop
    bound — which {!max_hops} computes and {!best_channel_bounded}
    enforces via a hop-layered Dijkstra. *)

val werner_swap : float -> float -> float
(** [werner_swap f1 f2] is the post-swap fidelity of two Werner pairs.
    @raise Invalid_argument if either fidelity is outside [\[0, 1\]]. *)

val channel_fidelity : f0:float -> hops:int -> float
(** End-to-end fidelity of a channel of [hops ≥ 1] quantum links whose
    every link starts at fidelity [f0], folding {!werner_swap} left to
    right.  @raise Invalid_argument on [hops < 1] or [f0] outside
    [\[0, 1\]]. *)

val max_hops : f0:float -> threshold:float -> max_considered:int -> int option
(** Largest hop count whose {!channel_fidelity} still meets
    [threshold], scanning up to [max_considered]; [None] when even a
    single link falls short. *)

val best_channel_bounded :
  Qnet_graph.Graph.t ->
  Params.t ->
  capacity:Capacity.t ->
  src:int ->
  dst:int ->
  max_hops:int ->
  Channel.t option
(** Maximum-rate capacity-feasible channel between two users using at
    most [max_hops] quantum links: Dijkstra over (vertex, hops-used)
    layers.  Rates and admissibility follow {!Routing} exactly; only
    the hop budget is new.  @raise Invalid_argument on non-user
    endpoints, [src = dst], or [max_hops < 1]. *)

type config = {
  f0 : float;  (** Fidelity of a freshly generated link pair. *)
  threshold : float;  (** Minimum acceptable end-to-end fidelity. *)
}

val solve_kruskal :
  Qnet_graph.Graph.t -> Params.t -> config -> Ent_tree.t option
(** Fidelity-aware analogue of Algorithm 2 + 3: compute hop-bounded
    best channels for all user pairs, select greedily by rate under
    residual capacity, then reconnect remaining unions with hop-bounded
    channels.  Every channel of the result satisfies the fidelity
    threshold; [None] when no such spanning tree exists. *)

val solve_prim :
  ?start:int ->
  Qnet_graph.Graph.t ->
  Params.t ->
  config ->
  Ent_tree.t option
(** Fidelity-aware analogue of Algorithm 4. *)

val tree_min_fidelity : f0:float -> Ent_tree.t -> float
(** The worst end-to-end channel fidelity in a tree ([1.] for an empty
    tree) — the quantity the threshold constrains. *)
