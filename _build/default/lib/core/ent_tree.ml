module Logprob = Qnet_util.Logprob

type t = { channels : Channel.t list; rate : Logprob.t }

let of_channels channels =
  let rate =
    List.fold_left
      (fun acc (c : Channel.t) -> Logprob.mul acc c.rate)
      Logprob.certain channels
  in
  { channels; rate }

let rate_prob t = Logprob.to_prob t.rate
let rate_neg_log t = Logprob.to_neg_log t.rate
let channel_count t = List.length t.channels

let spans_users t users =
  let users = List.sort_uniq compare users in
  let k = List.length users in
  if k <= 1 then t.channels = []
  else if List.length t.channels <> k - 1 then false
  else begin
    (* Map user ids to dense indices for a union-find over users. *)
    let index = Hashtbl.create k in
    List.iteri (fun i u -> Hashtbl.replace index u i) users;
    let uf = Qnet_graph.Union_find.create k in
    let ok =
      List.for_all
        (fun (c : Channel.t) ->
          match (Hashtbl.find_opt index c.src, Hashtbl.find_opt index c.dst) with
          | Some i, Some j -> Qnet_graph.Union_find.union uf i j
          | _ -> false)
        t.channels
    in
    ok && Qnet_graph.Union_find.count_sets uf = 1
  end

let qubit_usage t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun s ->
          Hashtbl.replace tbl s
            (2 + (try Hashtbl.find tbl s with Not_found -> 0)))
        (Channel.interior_switches c))
    t.channels;
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl []
  |> List.sort compare

let touches t v =
  List.exists (fun (c : Channel.t) -> List.mem v c.path) t.channels

let pp fmt t =
  Format.fprintf fmt "tree<%d channels, rate %g>" (channel_count t)
    (rate_prob t)
