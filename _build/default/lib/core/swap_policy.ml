module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng

type tree = Leaf of int | Node of tree * tree

let balanced links =
  if links < 1 then invalid_arg "Swap_policy.balanced: links < 1";
  let rec build lo hi =
    if lo = hi then Leaf lo
    else
      let mid = (lo + hi) / 2 in
      Node (build lo mid, build (mid + 1) hi)
  in
  build 0 (links - 1)

let linear links =
  if links < 1 then invalid_arg "Swap_policy.linear: links < 1";
  let rec build acc next =
    if next = links then acc else build (Node (acc, Leaf next)) (next + 1)
  in
  build (Leaf 0) 1

let rec leaves = function
  | Leaf i -> [ i ]
  | Node (a, b) -> leaves a @ leaves b

let validate tree ~links =
  let ls = leaves tree in
  if ls = List.init links (fun i -> i) then Ok ()
  else Error "tree leaves must be links 0..l-1 in order"

let link_probs g params (c : Channel.t) =
  let path = Array.of_list c.path in
  Array.init
    (Array.length path - 1)
    (fun i ->
      match Graph.find_edge g path.(i) path.(i + 1) with
      | None -> invalid_arg "Swap_policy: channel path not in graph"
      | Some eid ->
          Params.link_success params (Graph.edge g eid).Graph.length)

let check_tree g params c tree =
  let probs = link_probs g params c in
  (match validate tree ~links:(Array.length probs) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Swap_policy: " ^ msg));
  probs

let expected_slots_estimate g params c tree =
  let probs = check_tree g params c tree in
  let q = params.Params.q in
  let rec t = function
    | Leaf i -> if probs.(i) <= 0. then infinity else 1. /. probs.(i)
    | Node (a, b) ->
        let ta = t a and tb = t b in
        if ta = infinity || tb = infinity || q <= 0. then infinity
        else begin
          (* E(max) of two independent waiting times, exponential
             approximation; each failed swap consumes both segments. *)
          let emax = ta +. tb -. (1. /. ((1. /. ta) +. (1. /. tb))) in
          emax /. q
        end
  in
  t tree

(* Mutable mirror of the tree for simulation. *)
type node = {
  mutable complete : bool;
  kind : node_kind;
}

and node_kind = Link of int | Swap of node * node

let rec mirror = function
  | Leaf i -> { complete = false; kind = Link i }
  | Node (a, b) -> { complete = false; kind = Swap (mirror a, mirror b) }

let rec reset node =
  node.complete <- false;
  match node.kind with
  | Link _ -> ()
  | Swap (a, b) ->
      reset a;
      reset b

let simulate_slots rng g params c tree ~runs ~max_slots =
  if runs < 1 then invalid_arg "Swap_policy.simulate_slots: runs < 1";
  if max_slots < 1 then invalid_arg "Swap_policy.simulate_slots: max_slots < 1";
  let probs = check_tree g params c tree in
  let q = params.Params.q in
  let one_run () =
    let root = mirror tree in
    let rec slot_step node =
      if not node.complete then
        match node.kind with
        | Link i -> if Prng.bernoulli rng probs.(i) then node.complete <- true
        | Swap (a, b) ->
            slot_step a;
            slot_step b;
            if a.complete && b.complete then begin
              if Prng.bernoulli rng q then node.complete <- true
              else begin
                (* A failed BSM destroys both constituent segments. *)
                reset a;
                reset b
              end
            end
    in
    let rec run slot =
      if slot > max_slots then None
      else begin
        slot_step root;
        if root.complete then Some slot else run (slot + 1)
      end
    in
    run 1
  in
  let total = ref 0. in
  let ok = ref true in
  for _ = 1 to runs do
    match one_run () with
    | Some s -> total := !total +. float_of_int s
    | None -> ok := false
  done;
  if !ok then Some (!total /. float_of_int runs) else None
