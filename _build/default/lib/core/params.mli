(** Physical-model parameters of the quantum Internet (§II).

    A quantum link over a fiber of length [L] succeeds with probability
    [p = exp (−alpha · L)]; every BSM entanglement swap at a switch
    succeeds with probability [q]. *)

type t = {
  alpha : float;  (** Fiber attenuation constant; paper default [1e-4]
                      per km-unit. *)
  q : float;  (** BSM swap success probability; paper default [0.9]. *)
}

val default : t
(** The paper's §V-A values: [alpha = 1e-4], [q = 0.9]. *)

val create : ?alpha:float -> ?q:float -> unit -> t
(** {!default} with overrides.  @raise Invalid_argument if
    [alpha < 0.], or [q] outside [\[0, 1\]]. *)

val link_success : t -> float -> float
(** [link_success t length] is [exp (−alpha · length)] — the Bell-pair
    generation success probability over one fiber. *)

val link_neg_log : t -> float -> float
(** [−ln (link_success t length) = alpha · length]. *)

val swap_neg_log : t -> float
(** [−ln q]; [infinity] when [q = 0.]. *)
