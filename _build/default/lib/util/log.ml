let src = Logs.Src.create "qnet" ~doc:"Quantum-network routing library"

module L = (val Logs.src_log src : Logs.LOG)

let kmsg level fmt =
  Format.kasprintf
    (fun s ->
      match level with
      | Logs.Debug -> L.debug (fun m -> m "%s" s)
      | Logs.Info -> L.info (fun m -> m "%s" s)
      | Logs.Warning -> L.warn (fun m -> m "%s" s)
      | Logs.Error -> L.err (fun m -> m "%s" s)
      | Logs.App -> L.app (fun m -> m "%s" s))
    fmt

let debug fmt = kmsg Logs.Debug fmt
let info fmt = kmsg Logs.Info fmt
let warn fmt = kmsg Logs.Warning fmt

let setup ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level
