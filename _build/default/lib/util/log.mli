(** Library-wide logging (thin wrapper over [Logs]).

    Every qnet library logs through the single ["qnet"] source so
    applications can turn solver tracing on with one switch.  The CLI's
    [--verbose] flag calls {!setup} with [Debug]; library code must
    never call {!setup} itself. *)

val src : Logs.src
(** The shared log source (name ["qnet"]). *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Debug-level message on {!src} (compiled to a no-op cost when the
    level is disabled). *)

val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a

val setup : level:Logs.level option -> unit
(** Install a [Format]-based reporter on stderr and set the level for
    {!src}.  Intended for executables only. *)
