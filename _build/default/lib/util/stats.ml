let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let n = Array.length a in
  if n = 1 then 0.
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.)) 0. a in
    acc /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let geometric_mean a =
  check_nonempty "Stats.geometric_mean" a;
  if Array.exists (fun x -> x < 0.) a then
    invalid_arg "Stats.geometric_mean: negative element";
  if Array.exists (fun x -> x = 0.) a then 0.
  else
    let log_sum = Array.fold_left (fun s x -> s +. log x) 0. a in
    exp (log_sum /. float_of_int (Array.length a))

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile_sorted b p =
  let n = Array.length b in
  if n = 1 then b.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then b.(lo)
    else
      let frac = rank -. float_of_int lo in
      (b.(lo) *. (1. -. frac)) +. (b.(hi) *. frac)

let percentile a p =
  check_nonempty "Stats.percentile" a;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  percentile_sorted (sorted_copy a) p

let median a =
  check_nonempty "Stats.median" a;
  percentile_sorted (sorted_copy a) 50.

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize a =
  check_nonempty "Stats.summarize" a;
  let b = sorted_copy a in
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = b.(0);
    max = b.(Array.length b - 1);
    median = percentile_sorted b 50.;
  }

let z95 = 1.959963984540054

let mean_ci95 a =
  check_nonempty "Stats.mean_ci95" a;
  let m = mean a in
  let n = Array.length a in
  if n = 1 then (m, m)
  else
    let half = z95 *. stddev a /. sqrt (float_of_int n) in
    (m -. half, m +. half)

let wilson_ci95 ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.wilson_ci95: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_ci95: inconsistent counts";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z95 *. z95 in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z95 *. sqrt (((p *. (1. -. p)) +. (z2 /. (4. *. n))) /. n) /. denom
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))
