type align = Left | Right
type t = { headers : string list; aligns : align list; rows : string list list }

let create ?aligns headers =
  if headers = [] then invalid_arg "Table.create: empty header";
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns arity mismatch";
        a
    | None -> Left :: List.map (fun _ -> Right) (List.tl headers)
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  { t with rows = t.rows @ [ cells ] }

let float_cell x =
  if x = 0. then "0"
  else if Float.is_nan x then "nan"
  else if Float.abs x >= 0.01 && Float.abs x < 10000. then
    Printf.sprintf "%.4g" x
  else Printf.sprintf "%.3e" x

let add_float_row t label xs = add_row t (label :: List.map float_cell xs)

let widths t =
  let all = t.headers :: t.rows in
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let note row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  List.iter note all;
  w

let pad align width cell =
  let n = width - String.length cell in
  if n <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell

let to_string t =
  let w = widths t in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) w.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|-"
    ^ String.concat "-|-" (Array.to_list (Array.map (fun n -> String.make n '-') w))
    ^ "-|"
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row t.rows)

let csv_cell cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: t.rows))

let pp fmt t = Format.pp_print_string fmt (to_string t)
