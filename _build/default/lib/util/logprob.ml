type t = float (* -ln p; 0. = certain, +inf = impossible *)

let certain = 0.
let impossible = infinity

let of_prob p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg "Logprob.of_prob: probability outside [0, 1]";
  if p = 0. then infinity else -.log p

let of_neg_log x =
  if Float.is_nan x || x < 0. then
    invalid_arg "Logprob.of_neg_log: negative log-probability must be >= 0";
  x

let to_prob t = if t = infinity then 0. else exp (-.t)
let to_neg_log t = t
let mul a b = if a = infinity || b = infinity then infinity else a +. b

let pow t k =
  if k < 0 then invalid_arg "Logprob.pow: negative exponent";
  if k = 0 then certain
  else if t = infinity then infinity
  else t *. float_of_int k

let is_impossible t = t = infinity

(* Smaller -ln p means larger p, so ascending float order is descending
   probability order. *)
let compare_desc a b = Float.compare a b
let compare_asc a b = Float.compare b a
let equal a b = Float.equal a b
let pp fmt t = Format.fprintf fmt "%g (p=%g)" t (to_prob t)
