lib/util/prng.mli:
