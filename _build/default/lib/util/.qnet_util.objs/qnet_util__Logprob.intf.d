lib/util/logprob.mli: Format
