lib/util/log.mli: Format Logs
