lib/util/sexp.ml: Buffer List Printf String
