lib/util/stats.mli:
