lib/util/log.ml: Format Logs
