lib/util/sexp.mli:
