lib/util/logprob.ml: Float Format
