(** Probabilities in negative-log space.

    Entanglement rates are products of many per-link and per-swap success
    probabilities (Eq. 1–2 of the paper), so they underflow ordinary
    floats quickly (a 14-user tree over long fibers easily reaches
    1e-300).  All rate bookkeeping inside the routing algorithms is done
    on the negative natural logarithm, where the product becomes a sum —
    exactly the transformation §IV-A of the paper applies to reuse
    shortest-path machinery. *)

type t
(** A probability [p ∈ \[0, 1\]] represented as [-ln p].  Larger
    underlying probability compares as "better" via {!compare_desc}. *)

val certain : t
(** Probability 1 ([-ln 1 = 0]). *)

val impossible : t
(** Probability 0 ([+∞] in negative-log space). *)

val of_prob : float -> t
(** [of_prob p] injects an ordinary probability.
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or NaN. *)

val of_neg_log : float -> t
(** [of_neg_log x] treats [x >= 0.] directly as [-ln p].
    @raise Invalid_argument on a negative or NaN input. *)

val to_prob : t -> float
(** [to_prob t] recovers the plain probability ([exp (-x)]); may
    underflow to [0.] for extreme values, which is acceptable at report
    time. *)

val to_neg_log : t -> float
(** The raw [-ln p] value; [infinity] for {!impossible}. *)

val mul : t -> t -> t
(** Product of the underlying probabilities (sum in log space). *)

val pow : t -> int -> t
(** [pow t k] is the underlying probability raised to [k >= 0]. *)

val is_impossible : t -> bool
(** Whether the underlying probability is exactly 0. *)

val compare_desc : t -> t -> int
(** [compare_desc a b] orders larger probabilities first — the order in
    which the paper's algorithms consume candidate channels. *)

val compare_asc : t -> t -> int
(** [compare_asc a b] orders smaller probabilities first. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
