(** Descriptive statistics and interval estimates for experiment series.

    Every figure in the paper averages a routing metric over 20 random
    networks; this module supplies those aggregates plus the confidence
    intervals used when reporting Monte-Carlo estimates. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for singletons.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val geometric_mean : float array -> float
(** Geometric mean.  Returns [0.] if any element is [0.]; elements must
    be non-negative.  @raise Invalid_argument on an empty array or a
    negative element. *)

val median : float array -> float
(** Median (average of the two central order statistics for even
    lengths).  Does not mutate the input. *)

val percentile : float array -> float -> float
(** [percentile a p] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between order statistics. *)

val min_max : float array -> float * float
(** Smallest and largest elements.  @raise Invalid_argument on empty. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}
(** A one-shot descriptive summary of a sample. *)

val summarize : float array -> summary
(** [summarize a] computes all fields of {!summary} in one pass over a
    sorted copy.  @raise Invalid_argument on an empty array. *)

val mean_ci95 : float array -> float * float
(** [mean_ci95 a] is a normal-approximation 95% confidence interval
    [(lo, hi)] for the mean.  Degenerates to [(m, m)] for singletons. *)

val wilson_ci95 : successes:int -> trials:int -> float * float
(** [wilson_ci95 ~successes ~trials] is the Wilson score 95% interval
    for a binomial proportion — the interval used when validating
    analytic entanglement rates against Monte-Carlo trials.
    @raise Invalid_argument if [trials <= 0] or counts are
    inconsistent. *)
