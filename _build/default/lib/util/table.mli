(** Plain-text and CSV rendering of experiment result tables.

    The benchmark harness prints one table per reproduced paper figure;
    this module owns the formatting so every experiment reports in the
    same shape. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest, which suits "label, number, number, …" experiment rows.
    @raise Invalid_argument if [headers] is empty or [aligns] has a
    different length. *)

val add_row : t -> string list -> t
(** [add_row t cells] appends a row.  @raise Invalid_argument if the
    arity differs from the header. *)

val add_float_row : t -> string -> float list -> t
(** [add_float_row t label xs] appends [label] followed by each float
    rendered with {!float_cell}. *)

val float_cell : float -> string
(** Compact scientific / fixed rendering used for entanglement rates:
    ["0"] for zero, 4 significant digits otherwise. *)

val to_string : t -> string
(** ASCII-art rendering with column-width alignment and a header
    separator. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (cells containing commas, quotes or newlines are
    quoted). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer equivalent to {!to_string}. *)
