module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

let link_probs g params (c : Channel.t) =
  let path = Array.of_list c.path in
  Array.init
    (Array.length path - 1)
    (fun i ->
      match Graph.find_edge g path.(i) path.(i + 1) with
      | None -> invalid_arg "Decoherence: channel path not in graph"
      | Some eid ->
          Params.link_success params (Graph.edge g eid).Graph.length)

(* One channel's build state: per-link pair ages (-1 = down). *)
type channel_state = { probs : float array; age : int array }

let fresh_state g params c =
  let probs = link_probs g params c in
  { probs; age = Array.make (Array.length probs) (-1) }

let reset_state s = Array.fill s.age 0 (Array.length s.age) (-1)

(* Advance one slot of the per-channel build; true iff the channel
   completed end-to-end this slot. *)
let step_channel rng params ~cutoff s =
  let links = Array.length s.probs in
  let swaps = max 0 (links - 1) in
  (* 1. Decoherence: discard pairs that exceeded the cutoff. *)
  for i = 0 to links - 1 do
    if s.age.(i) >= 0 then begin
      s.age.(i) <- s.age.(i) + 1;
      if s.age.(i) > cutoff then s.age.(i) <- -1
    end
  done;
  (* 2. Regeneration attempts on down links. *)
  for i = 0 to links - 1 do
    if s.age.(i) < 0 && Prng.bernoulli rng s.probs.(i) then s.age.(i) <- 0
  done;
  (* 3. If the whole chain is alive, attempt every BSM. *)
  if Array.for_all (fun a -> a >= 0) s.age then begin
    let all_ok = ref true in
    for _ = 1 to swaps do
      if not (Prng.bernoulli rng params.Params.q) then all_ok := false
    done;
    if !all_ok then true
    else begin
      (* A failed measurement round consumes every pair. *)
      reset_state s;
      false
    end
  end
  else false

let channel_slots_to_completion rng g params (c : Channel.t) ~cutoff
    ~max_slots =
  if cutoff < 0 then
    invalid_arg "Decoherence.channel_slots_to_completion: negative cutoff";
  if max_slots < 1 then
    invalid_arg "Decoherence.channel_slots_to_completion: max_slots < 1";
  let s = fresh_state g params c in
  let rec run slot =
    if slot > max_slots then None
    else if step_channel rng params ~cutoff s then Some slot
    else run (slot + 1)
  in
  run 1

let effective_rate rng g params c ~cutoff ~runs ~max_slots =
  if runs < 1 then invalid_arg "Decoherence.effective_rate: runs < 1";
  let total = ref 0. in
  let ok = ref true in
  for _ = 1 to runs do
    match channel_slots_to_completion rng g params c ~cutoff ~max_slots with
    | Some s -> total := !total +. float_of_int s
    | None -> ok := false
  done;
  if !ok then Some (float_of_int runs /. !total) else None

let synchronous_reference c = Channel.rate_prob c

(* Whole-tree dynamics: each channel is either still building (Building
   holds its link state) or done, holding its end-to-end pair for at
   most tree_cutoff further slots. *)
type tree_channel = {
  state : channel_state;
  mutable done_age : int; (* -1 = still building *)
}

let tree_slots_to_completion rng g params (tree : Ent_tree.t) ~cutoff
    ~tree_cutoff ~max_slots =
  if cutoff < 0 || tree_cutoff < 0 then
    invalid_arg "Decoherence.tree_slots_to_completion: negative cutoff";
  if max_slots < 1 then
    invalid_arg "Decoherence.tree_slots_to_completion: max_slots < 1";
  let channels =
    List.map
      (fun c -> { state = fresh_state g params c; done_age = -1 })
      tree.Ent_tree.channels
  in
  if channels = [] then Some 1
  else begin
    let rec run slot =
      if slot > max_slots then None
      else begin
        (* Age out completed channels first. *)
        List.iter
          (fun tc ->
            if tc.done_age >= 0 then begin
              tc.done_age <- tc.done_age + 1;
              if tc.done_age > tree_cutoff then begin
                tc.done_age <- -1;
                reset_state tc.state
              end
            end)
          channels;
        (* Advance the still-building channels. *)
        List.iter
          (fun tc ->
            if tc.done_age < 0 && step_channel rng params ~cutoff tc.state
            then tc.done_age <- 0)
          channels;
        if List.for_all (fun tc -> tc.done_age >= 0) channels then Some slot
        else run (slot + 1)
      end
    in
    run 1
  end

let tree_effective_rate rng g params tree ~cutoff ~tree_cutoff ~runs
    ~max_slots =
  if runs < 1 then invalid_arg "Decoherence.tree_effective_rate: runs < 1";
  let total = ref 0. in
  let ok = ref true in
  for _ = 1 to runs do
    match
      tree_slots_to_completion rng g params tree ~cutoff ~tree_cutoff
        ~max_slots
    with
    | Some s -> total := !total +. float_of_int s
    | None -> ok := false
  done;
  if !ok then Some (float_of_int runs /. !total) else None
