module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
open Qnet_core

type allocation = { switch_id : int; allocated : int; budget : int }

type slot_report = {
  slot : int;
  link_failures : int;
  swap_failures : int;
  swaps_skipped : int;
  channels_up : int;
  success : bool;
}

type run = {
  allocations : allocation list;
  slots : slot_report list;
  succeeded_at : int option;
}

let plan_allocations g (tree : Ent_tree.t) =
  let allocations =
    List.map
      (fun (s, used) ->
        { switch_id = s; allocated = used; budget = Graph.qubits g s })
      (Ent_tree.qubit_usage tree)
  in
  List.iter
    (fun a ->
      if a.allocated > a.budget then
        failwith
          (Printf.sprintf
             "Protocol.plan_allocations: switch %d over-allocated (%d > %d)"
             a.switch_id a.allocated a.budget))
    allocations;
  allocations

(* One channel's slot: sample each link in path order, then attempt a
   BSM at each interior switch whose two adjacent links both stand. *)
let channel_slot rng g params (c : Channel.t) =
  let path = Array.of_list c.path in
  let links = Array.length path - 1 in
  let link_up =
    Array.init links (fun i ->
        match Graph.find_edge g path.(i) path.(i + 1) with
        | None -> invalid_arg "Protocol: channel path not in graph"
        | Some eid ->
            let e = Graph.edge g eid in
            Prng.bernoulli rng (Params.link_success params e.length))
  in
  let link_failures =
    Array.fold_left (fun n up -> if up then n else n + 1) 0 link_up
  in
  let swap_failures = ref 0 and swaps_skipped = ref 0 in
  let all_swaps_ok = ref true in
  (* Interior switch at path index i sits between links i-1 and i. *)
  for i = 1 to links - 1 do
    if link_up.(i - 1) && link_up.(i) then begin
      if not (Prng.bernoulli rng params.Params.q) then begin
        incr swap_failures;
        all_swaps_ok := false
      end
    end
    else begin
      incr swaps_skipped;
      all_swaps_ok := false
    end
  done;
  let up = link_failures = 0 && !all_swaps_ok in
  (link_failures, !swap_failures, !swaps_skipped, up)

let execute rng g params (tree : Ent_tree.t) ~max_slots =
  if max_slots <= 0 then invalid_arg "Protocol.execute: max_slots <= 0";
  let allocations = plan_allocations g tree in
  let slots = ref [] in
  let succeeded_at = ref None in
  let slot = ref 1 in
  while !succeeded_at = None && !slot <= max_slots do
    let lf = ref 0 and sf = ref 0 and sk = ref 0 and up = ref 0 in
    List.iter
      (fun c ->
        let l, s, k, channel_up = channel_slot rng g params c in
        lf := !lf + l;
        sf := !sf + s;
        sk := !sk + k;
        if channel_up then incr up)
      tree.channels;
    let success = !up = List.length tree.channels in
    slots :=
      {
        slot = !slot;
        link_failures = !lf;
        swap_failures = !sf;
        swaps_skipped = !sk;
        channels_up = !up;
        success;
      }
      :: !slots;
    if success then succeeded_at := Some !slot;
    incr slot
  done;
  { allocations; slots = List.rev !slots; succeeded_at = !succeeded_at }
