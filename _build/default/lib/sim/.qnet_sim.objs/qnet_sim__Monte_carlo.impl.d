lib/sim/monte_carlo.ml: Array Ent_tree Qnet_core Qnet_util Trial
