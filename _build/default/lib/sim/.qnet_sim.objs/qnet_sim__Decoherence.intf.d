lib/sim/decoherence.mli: Qnet_core Qnet_graph Qnet_util
