lib/sim/trial.ml: Channel Ent_tree List Params Qnet_core Qnet_graph Qnet_util
