lib/sim/monte_carlo.mli: Qnet_core Qnet_graph Qnet_util
