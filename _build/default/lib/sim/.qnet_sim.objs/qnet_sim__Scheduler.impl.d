lib/sim/scheduler.ml: Array Capacity Channel Ent_tree Float Hashtbl List Multi_group Qnet_core Qnet_graph Qnet_util
