lib/sim/protocol.ml: Array Channel Ent_tree List Params Printf Qnet_core Qnet_graph Qnet_util
