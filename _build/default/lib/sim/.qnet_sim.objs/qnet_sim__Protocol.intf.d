lib/sim/protocol.mli: Qnet_core Qnet_graph Qnet_util
