lib/sim/scheduler.mli: Qnet_core Qnet_graph Qnet_util
