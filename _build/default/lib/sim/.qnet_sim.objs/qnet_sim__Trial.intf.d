lib/sim/trial.mli: Qnet_core Qnet_graph Qnet_util
