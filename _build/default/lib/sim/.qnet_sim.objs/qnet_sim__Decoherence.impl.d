lib/sim/decoherence.ml: Array Channel Ent_tree List Params Qnet_core Qnet_graph Qnet_util
