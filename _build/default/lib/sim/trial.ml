module Graph = Qnet_graph.Graph
module Paths = Qnet_graph.Paths
module Prng = Qnet_util.Prng
open Qnet_core

type channel_outcome = {
  channel : Channel.t;
  links_ok : bool;
  swaps_ok : bool;
}

type t = { channel_outcomes : channel_outcome list; success : bool }

let channel_success o = o.links_ok && o.swaps_ok

let sample_channel rng g params (c : Channel.t) =
  let links_ok = ref true in
  let rec walk = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) -> begin
        match Graph.find_edge g u v with
        | None -> invalid_arg "Trial: channel path not in graph"
        | Some eid ->
            let e = Graph.edge g eid in
            let p = Params.link_success params e.length in
            if not (Prng.bernoulli rng p) then links_ok := false;
            walk rest
      end
  in
  walk c.path;
  let swaps_ok = ref true in
  List.iter
    (fun _switch ->
      if not (Prng.bernoulli rng params.Params.q) then swaps_ok := false)
    (Channel.interior_switches c);
  { channel = c; links_ok = !links_ok; swaps_ok = !swaps_ok }

let run rng g params (tree : Ent_tree.t) =
  let channel_outcomes =
    List.map (sample_channel rng g params) tree.channels
  in
  { channel_outcomes; success = List.for_all channel_success channel_outcomes }
