(** Asynchronous link generation with memory decoherence cutoffs.

    Eq. (1) assumes every link of a channel must succeed {e within the
    same time slot} — the fully synchronous reading.  Real switches hold
    an early Bell pair in memory while neighbouring links retry, but
    only for a bounded number of slots before decoherence forces a
    discard (the memory-cutoff model of the swapping-tree literature the
    paper cites, reference [17]).  This module simulates that
    asynchronous process per channel:

    - each quantum link independently attempts generation every slot
      (success probability [exp (−α·L)]) and, once up, survives at most
      [cutoff] further slots in memory;
    - when all links of the channel are simultaneously alive, the
      switches attempt their BSMs (each succeeding w.p. [q]); any BSM
      failure collapses all links back to down;
    - the channel completes when a BSM round fully succeeds.

    [cutoff = 0] recovers the synchronous model (everything must align
    in one slot); larger cutoffs interpolate toward the
    distance-independent regime.  The module estimates the {e effective
    per-slot completion rate} (1 / mean slots to completion), letting
    experiments quantify how much memory lifetime buys. *)

val channel_slots_to_completion :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Channel.t ->
  cutoff:int ->
  max_slots:int ->
  int option
(** Slots until the channel first completes end-to-end under the given
    memory cutoff; [None] if [max_slots] pass first.
    @raise Invalid_argument on negative [cutoff] or
    [max_slots < 1]. *)

val effective_rate :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Channel.t ->
  cutoff:int ->
  runs:int ->
  max_slots:int ->
  float option
(** [1 / mean slots-to-completion] over [runs] repetitions — the
    channel's effective entanglement rate under the cutoff.  [None] if
    any repetition times out. *)

val synchronous_reference : Qnet_core.Channel.t -> float
(** The channel's Eq. (1) rate — the analytic synchronous baseline the
    cutoff-0 simulation must reproduce. *)

(** {1 Whole-tree dynamics}

    Multi-user entanglement needs {e all} channels of the tree alive
    simultaneously (Eq. 2).  With memories, each channel is built
    asynchronously as above, and a {e completed} channel's end-to-end
    pair then waits in the endpoint users' memories for at most
    [tree_cutoff] further slots before decohering and needing a rebuild.
    [tree_cutoff = 0] again recovers the synchronous product model. *)

val tree_slots_to_completion :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  cutoff:int ->
  tree_cutoff:int ->
  max_slots:int ->
  int option
(** Slots until every channel of the tree is simultaneously alive.
    [cutoff] bounds link-pair memory during each channel's build (as in
    {!channel_slots_to_completion}); [tree_cutoff] bounds how long a
    finished channel's end-to-end pair survives while waiting for its
    siblings.  [None] if [max_slots] pass first.  An empty tree
    completes at slot 1. *)

val tree_effective_rate :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  cutoff:int ->
  tree_cutoff:int ->
  runs:int ->
  max_slots:int ->
  float option
(** [1 / mean slots-to-completion] over [runs] repetitions. *)
