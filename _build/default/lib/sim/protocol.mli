(** Event-level simulation of the §II-B entanglement process.

    Where {!Trial} samples only the success/failure Bernoulli structure,
    this module walks the full offline-plan protocol the paper
    describes: the central controller distributes the routing plan, each
    switch {e allocates} 2 memory qubits per channel crossing it, then
    synchronized slots execute phases — Bell-pair generation on every
    quantum link, BSM swaps at switches whose both adjacent links
    succeeded, end-to-end channel verification — until the tree
    entangles or the slot budget ends.  The allocation step re-checks
    switch budgets at "runtime", catching any planner capacity bug that
    static verification might miss. *)

type allocation = {
  switch_id : int;
  allocated : int;  (** Qubits pinned by the plan at this switch. *)
  budget : int;  (** The switch's total memory qubits. *)
}

type slot_report = {
  slot : int;
  link_failures : int;  (** Quantum links that failed generation. *)
  swap_failures : int;  (** BSMs attempted and failed. *)
  swaps_skipped : int;  (** BSMs not attempted (an adjacent link was
                            already down). *)
  channels_up : int;  (** Channels fully entangled this slot. *)
  success : bool;  (** All channels up simultaneously. *)
}

type run = {
  allocations : allocation list;  (** Per-switch plan allocations,
                                      ascending by switch id. *)
  slots : slot_report list;  (** One report per executed slot. *)
  succeeded_at : int option;  (** Slot index of first success. *)
}

val plan_allocations :
  Qnet_graph.Graph.t -> Qnet_core.Ent_tree.t -> allocation list
(** The qubit allocation the plan implies at every switch it crosses.
    @raise Failure if any switch would be over-allocated — the planner
    produced an invalid plan. *)

val execute :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  max_slots:int ->
  run
(** Run the protocol for at most [max_slots] synchronized slots,
    stopping at the first fully successful slot. *)
