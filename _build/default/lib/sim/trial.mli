(** One stochastic attempt of an entanglement plan (§II-B, one time
    slot).

    The analytic rates of Eq. (1)–(2) integrate over exactly this
    process: in a synchronized slot every quantum link of every channel
    tries to generate a Bell pair (success probability
    [exp (−alpha · L)]) and every interior switch attempts its BSM swap
    (success probability [q]); the multi-user entanglement succeeds iff
    every elementary event succeeds.  This module samples the process
    so Monte-Carlo estimation can validate the analytic model. *)

type channel_outcome = {
  channel : Qnet_core.Channel.t;
  links_ok : bool;  (** All Bell-pair generations succeeded. *)
  swaps_ok : bool;  (** All BSM swaps succeeded. *)
}

type t = {
  channel_outcomes : channel_outcome list;
  success : bool;  (** Whole-tree entanglement achieved this slot. *)
}

val channel_success : channel_outcome -> bool
(** [links_ok && swaps_ok]. *)

val run :
  Qnet_util.Prng.t ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  Qnet_core.Ent_tree.t ->
  t
(** Sample one slot.  Each link and swap is an independent Bernoulli
    draw; the per-channel and per-tree conjunctions mirror Eq. (1) and
    Eq. (2).  All elementary events are always sampled (no
    short-circuiting) so the PRNG stream advances deterministically for
    a given tree shape. *)
