(** Ablation studies over the design choices DESIGN.md calls out.

    Each function returns a rendered-ready {!Qnet_util.Table.t} whose
    rows isolate one modelling/algorithmic knob:

    - the Waxman distance-decay constant (topology realism);
    - E-Q-CAST's chaining order (our extension choice for the baseline);
    - N-FUSION's fusion-success discount (the substitution constant in
      the baseline model);
    - Algorithm 4's start-user sensitivity (the paper picks it
      randomly);
    - the Fig. 8(a) [2·|U|]-qubit boost convention for Algorithm 2;
    - fidelity-threshold sweep for the fidelity-aware extension;
    - sequential vs round-robin allocation for multi-group routing. *)

val waxman_alpha : ?cfg:Config.t -> ?alphas:float list -> unit -> Qnet_util.Table.t
val eqcast_order : ?cfg:Config.t -> unit -> Qnet_util.Table.t

val nfusion_discount :
  ?cfg:Config.t -> ?discounts:float list -> unit -> Qnet_util.Table.t

val prim_start : ?cfg:Config.t -> ?seeds:int list -> unit -> Qnet_util.Table.t
val alg2_boost : ?cfg:Config.t -> unit -> Qnet_util.Table.t

val fidelity_threshold :
  ?cfg:Config.t ->
  ?f0:float ->
  ?thresholds:float list ->
  unit ->
  Qnet_util.Table.t

val multi_group_strategy :
  ?cfg:Config.t -> ?n_groups:int -> ?group_size:int -> unit -> Qnet_util.Table.t

val kbest_vs_alg3 :
  ?cfg:Config.t -> ?ks:int list -> unit -> Qnet_util.Table.t
(** k-candidate conflict resolution ({!Qnet_core.Alg_kbest}) against
    Algorithm 3's reroute strategy, on a capacity-tight variant of the
    configuration (2-qubit switches). *)

val purification_cost :
  ?cfg:Config.t -> ?f0:float -> ?thresholds:float list -> unit ->
  Qnet_util.Table.t
(** Effective tree rate after BBPSSW purification to each target
    fidelity, against the raw Eq. (2) rate. *)

val scheduler_load :
  ?cfg:Config.t -> ?gaps:float list -> unit -> Qnet_util.Table.t
(** Online admission control under increasing request load (smaller
    inter-arrival gaps). *)

val redundancy_boost :
  ?cfg:Config.t -> ?qubit_counts:int list -> unit -> Qnet_util.Table.t
(** How much leftover switch memory buys as backup channels
    ({!Qnet_core.Redundancy}), across switch qubit budgets. *)

val decoherence_cutoff :
  ?cfg:Config.t -> ?cutoffs:int list -> unit -> Qnet_util.Table.t
(** Effective single-channel rate under asynchronous link generation
    with memory cutoffs ({!Qnet_sim.Decoherence}), relative to the
    synchronous Eq. (1) value. *)

val swap_policy :
  ?cfg:Config.t -> ?link_counts:int list -> unit -> Qnet_util.Table.t
(** Expected channel-build slots under linear vs balanced swapping
    trees ({!Qnet_core.Swap_policy}) against the synchronous 1/rate
    expectation, by channel length. *)

val fusion_baselines : ?cfg:Config.t -> unit -> Qnet_util.Table.t
(** Central-user star ({!Qnet_baselines.Nfusion}) vs Steiner fusion
    tree ({!Qnet_baselines.Ghz_steiner}) vs Algorithm 3. *)

val local_search_gain :
  ?cfg:Config.t -> ?qubit_counts:int list -> unit -> Qnet_util.Table.t
(** Rate gained by {!Qnet_core.Local_search} edge exchange on top of
    Algorithm 3, across switch memory budgets. *)

val all : ?cfg:Config.t -> unit -> (string * Qnet_util.Table.t) list
(** Every ablation with a descriptive title, in a stable order. *)
