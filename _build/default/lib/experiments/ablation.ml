module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Stats = Qnet_util.Stats
module Table = Qnet_util.Table
module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
open Qnet_core

(* Mean of [f network] over the configuration's replicated networks. *)
let replicate (cfg : Config.t) f =
  let rates =
    Array.init cfg.replications (fun i ->
        let seed = cfg.base_seed + i in
        let rng = Prng.create seed in
        let g = Generate.run cfg.kind rng cfg.spec in
        f ~seed g)
  in
  Stats.mean rates

let waxman_alpha ?(cfg = Config.default) ?(alphas = [ 0.05; 0.1; 0.15; 0.3 ])
    () =
  let t = Table.create [ "alpha_w"; "mean fiber len"; "Alg-3 rate" ] in
  List.fold_left
    (fun t alpha_w ->
      let kind = Generate.Waxman { Qnet_topology.Waxman.alpha_w } in
      let cfg = { cfg with Config.kind } in
      let len =
        replicate cfg (fun ~seed:_ g ->
            Graph.fold_edges g ~init:0. ~f:(fun acc e ->
                acc +. e.Graph.length)
            /. float_of_int (Graph.edge_count g))
      in
      let rate =
        replicate cfg (fun ~seed:_ g ->
            match Alg_conflict_free.solve g cfg.Config.params with
            | None -> 0.
            | Some tree -> Ent_tree.rate_prob tree)
      in
      Table.add_row t
        [ Printf.sprintf "%g" alpha_w;
          Printf.sprintf "%.0f" len;
          Table.float_cell rate ])
    t alphas

let eqcast_order ?(cfg = Config.default) () =
  let t = Table.create [ "chain order"; "mean rate"; "feasible" ] in
  List.fold_left
    (fun t (label, order) ->
      let feasible = ref 0 in
      let rate =
        replicate cfg (fun ~seed:_ g ->
            match Qnet_baselines.Eqcast.solve ~order g cfg.Config.params with
            | None -> 0.
            | Some tree ->
                incr feasible;
                Ent_tree.rate_prob tree)
      in
      Table.add_row t
        [ label;
          Table.float_cell rate;
          Printf.sprintf "%d/%d" !feasible cfg.Config.replications ])
    t
    [
      ("by-id (paper)", Qnet_baselines.Eqcast.By_id);
      ("nearest-neighbor", Qnet_baselines.Eqcast.Nearest_neighbor);
    ]

let nfusion_discount ?(cfg = Config.default)
    ?(discounts = [ 1.0; 0.9; 0.75; 0.5; 0.3 ]) () =
  let t = Table.create [ "fusion discount"; "mean rate" ] in
  List.fold_left
    (fun t fusion_discount ->
      let rate =
        replicate cfg (fun ~seed:_ g ->
            Qnet_baselines.Nfusion.rate
              (Qnet_baselines.Nfusion.solve
                 ~params:{ Qnet_baselines.Nfusion.fusion_discount }
                 g cfg.Config.params))
      in
      Table.add_row t
        [ Printf.sprintf "%g" fusion_discount; Table.float_cell rate ])
    t discounts

let prim_start ?(cfg = Config.default) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  (* For a single network, how much does the start user matter? *)
  let t =
    Table.create [ "network seed"; "best start"; "worst start"; "spread %" ]
  in
  List.fold_left
    (fun t seed ->
      let rng = Prng.create seed in
      let g = Generate.run cfg.Config.kind rng cfg.Config.spec in
      let rates =
        List.filter_map
          (fun start ->
            match Alg_prim.solve ~start g cfg.Config.params with
            | None -> None
            | Some tree -> Some (Ent_tree.rate_prob tree))
          (Graph.users g)
      in
      match rates with
      | [] -> Table.add_row t [ string_of_int seed; "-"; "-"; "-" ]
      | _ ->
          let lo, hi = Stats.min_max (Array.of_list rates) in
          let spread = if hi > 0. then 100. *. (hi -. lo) /. hi else 0. in
          Table.add_row t
            [ string_of_int seed;
              Table.float_cell hi;
              Table.float_cell lo;
              Printf.sprintf "%.1f" spread ])
    t seeds

let alg2_boost ?(cfg = Config.default) () =
  let t = Table.create [ "convention"; "Alg-2 mean rate" ] in
  List.fold_left
    (fun t (label, alg2_boost) ->
      let cfg = { cfg with Config.alg2_boost } in
      let rate =
        replicate cfg (fun ~seed g ->
            let rng = Prng.create (seed * 7919) in
            Runner.run_method g cfg.Config.params ~rng ~alg2_boost Runner.Alg2)
      in
      Table.add_row t [ label; Table.float_cell rate ])
    t
    [ ("boosted to 2N (paper)", true); ("configured qubits", false) ]

let fidelity_threshold ?(cfg = Config.default) ?(f0 = 0.98)
    ?(thresholds = [ 0.5; 0.8; 0.9; 0.95 ]) () =
  let t =
    Table.create
      [ "threshold"; "max hops"; "mean rate"; "mean min fidelity" ]
  in
  List.fold_left
    (fun t threshold ->
      let bound =
        Fidelity.max_hops ~f0 ~threshold ~max_considered:64
      in
      let rates = ref [] and fids = ref [] in
      let _ =
        replicate cfg (fun ~seed:_ g ->
            (match
               Fidelity.solve_kruskal g cfg.Config.params
                 { Fidelity.f0; threshold }
             with
            | None -> rates := 0. :: !rates
            | Some tree ->
                rates := Ent_tree.rate_prob tree :: !rates;
                fids := Fidelity.tree_min_fidelity ~f0 tree :: !fids);
            0.)
      in
      let mean l =
        match l with [] -> 0. | _ -> Stats.mean (Array.of_list l)
      in
      Table.add_row t
        [ Printf.sprintf "%g" threshold;
          (match bound with None -> "0" | Some h -> string_of_int h);
          Table.float_cell (mean !rates);
          Table.float_cell (mean !fids) ])
    t thresholds

let multi_group_strategy ?(cfg = Config.default) ?(n_groups = 3)
    ?(group_size = 3) () =
  let spec =
    { cfg.Config.spec with Spec.n_users = n_groups * group_size }
  in
  let cfg = { cfg with Config.spec = spec } in
  let t =
    Table.create
      [ "strategy"; "all groups served"; "mean min rate"; "mean agg -ln rate" ]
  in
  List.fold_left
    (fun t (label, strategy) ->
      let served = ref 0 and mins = ref [] and aggs = ref [] in
      let _ =
        replicate cfg (fun ~seed:_ g ->
            let users = Graph.users g in
            let rec chunk = function
              | [] -> []
              | l ->
                  let rec take n = function
                    | [] -> ([], [])
                    | x :: rest when n > 0 ->
                        let a, b = take (n - 1) rest in
                        (x :: a, b)
                    | rest -> ([], rest)
                  in
                  let head, tail = take group_size l in
                  head :: chunk tail
            in
            let groups = List.filter (fun g -> g <> []) (chunk users) in
            let r = Multi_group.solve ~strategy g cfg.Config.params ~groups in
            if r.Multi_group.all_feasible then incr served;
            mins := r.Multi_group.min_rate :: !mins;
            aggs := r.Multi_group.aggregate_neg_log :: !aggs;
            0.)
      in
      Table.add_row t
        [ label;
          Printf.sprintf "%d/%d" !served cfg.Config.replications;
          Table.float_cell (Stats.mean (Array.of_list !mins));
          Table.float_cell (Stats.mean (Array.of_list !aggs)) ])
    t
    [
      ("sequential", Multi_group.Sequential);
      ("round-robin", Multi_group.Round_robin);
    ]

let kbest_vs_alg3 ?(cfg = Config.default) ?(ks = [ 1; 3; 5 ]) () =
  (* Tight capacity so conflicts actually occur. *)
  let spec = { cfg.Config.spec with Spec.qubits_per_switch = 2 } in
  let cfg = { cfg with Config.spec = spec } in
  let t = Table.create [ "solver"; "mean rate"; "feasible" ] in
  let row label solve =
    let feasible = ref 0 in
    let rate =
      replicate cfg (fun ~seed:_ g ->
          match solve g with
          | None -> 0.
          | Some tree ->
              incr feasible;
              Ent_tree.rate_prob tree)
    in
    (label, rate, !feasible)
  in
  let rows =
    row "alg3 (reroute)" (fun g -> Alg_conflict_free.solve g cfg.Config.params)
    :: List.map
         (fun k ->
           row
             (Printf.sprintf "k-best, k=%d" k)
             (fun g -> Alg_kbest.solve ~k g cfg.Config.params))
         ks
  in
  List.fold_left
    (fun t (label, rate, feasible) ->
      Table.add_row t
        [ label;
          Table.float_cell rate;
          Printf.sprintf "%d/%d" feasible cfg.Config.replications ])
    t rows

let purification_cost ?(cfg = Config.default) ?(f0 = 0.95)
    ?(thresholds = [ 0.9; 0.95; 0.98; 0.99 ]) () =
  let t =
    Table.create
      [ "target fidelity"; "raw-rate mean"; "purified-rate mean"; "served" ]
  in
  List.fold_left
    (fun t threshold ->
      let raw = ref [] and purified = ref [] and served = ref 0 in
      let _ =
        replicate cfg (fun ~seed:_ g ->
            (match Alg_conflict_free.solve g cfg.Config.params with
            | None -> ()
            | Some tree -> (
                raw := Ent_tree.rate_prob tree :: !raw;
                match
                  Purification.effective_tree_rate ~f0 ~threshold
                    ~max_rounds:16 tree
                with
                | None -> purified := 0. :: !purified
                | Some r ->
                    incr served;
                    purified := r :: !purified));
            0.)
      in
      let mean l =
        match l with [] -> 0. | _ -> Stats.mean (Array.of_list l)
      in
      Table.add_row t
        [ Printf.sprintf "%g" threshold;
          Table.float_cell (mean !raw);
          Table.float_cell (mean !purified);
          Printf.sprintf "%d/%d" !served cfg.Config.replications ])
    t thresholds

let scheduler_load ?(cfg = Config.default) ?(gaps = [ 8.; 4.; 2.; 1. ]) () =
  (* Tight memory (2-qubit switches) so load actually causes rejects. *)
  let spec = { cfg.Config.spec with Spec.qubits_per_switch = 2 } in
  let cfg = { cfg with Config.spec = spec } in
  let t =
    Table.create
      [ "mean arrival gap"; "acceptance"; "mean rate|accepted"; "mean wait" ]
  in
  List.fold_left
    (fun t gap ->
      let ratios = ref [] and rates = ref [] and waits = ref [] in
      let _ =
        replicate cfg (fun ~seed g ->
            let rng = Prng.create (seed + 9000) in
            let requests =
              Qnet_sim.Scheduler.random_requests rng g ~n:40 ~mean_gap:gap
                ~max_group:4 ~duration_range:(3, 8)
            in
            let stats, _ =
              Qnet_sim.Scheduler.run
                ~policy:(Qnet_sim.Scheduler.Queue 5)
                g cfg.Config.params ~requests
            in
            ratios := stats.Qnet_sim.Scheduler.acceptance_ratio :: !ratios;
            rates := stats.Qnet_sim.Scheduler.mean_accepted_rate :: !rates;
            waits := stats.Qnet_sim.Scheduler.mean_wait_slots :: !waits;
            0.)
      in
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [ Printf.sprintf "%g" gap;
          Printf.sprintf "%.2f" (mean !ratios);
          Table.float_cell (mean !rates);
          Printf.sprintf "%.2f" (mean !waits) ])
    t gaps

let redundancy_boost ?(cfg = Config.default) ?(qubit_counts = [ 4; 6; 8; 12 ])
    () =
  let t =
    Table.create
      [ "qubits/switch"; "alg3 rate"; "boosted rate"; "mean backups" ]
  in
  List.fold_left
    (fun t q ->
      let spec = { cfg.Config.spec with Spec.qubits_per_switch = q } in
      let cfg = { cfg with Config.spec = spec } in
      let base = ref [] and boosted = ref [] and backups = ref [] in
      let _ =
        replicate cfg (fun ~seed:_ g ->
            (match Redundancy.solve g cfg.Config.params with
            | None ->
                base := 0. :: !base;
                boosted := 0. :: !boosted
            | Some r ->
                let tree_rate =
                  (* The primary-only rate is the product of each
                     group's first channel. *)
                  List.fold_left
                    (fun acc (grp : Redundancy.edge_group) ->
                      match grp.Redundancy.channels with
                      | primary :: _ -> acc *. Channel.rate_prob primary
                      | [] -> acc)
                    1. r.Redundancy.groups
                in
                base := tree_rate :: !base;
                boosted := r.Redundancy.rate :: !boosted;
                backups := float_of_int r.Redundancy.backups_added :: !backups);
            0.)
      in
      let mean l =
        match l with [] -> 0. | _ -> Stats.mean (Array.of_list l)
      in
      Table.add_row t
        [ string_of_int q;
          Table.float_cell (mean !base);
          Table.float_cell (mean !boosted);
          Printf.sprintf "%.1f" (mean !backups) ])
    t qubit_counts

let decoherence_cutoff ?(cfg = Config.default) ?(cutoffs = [ 0; 1; 3; 10 ])
    () =
  let t =
    Table.create [ "memory cutoff"; "channel eff. rate"; "vs synchronous" ]
  in
  (* One representative channel: the best channel between the first two
     users of each replicated network, simulated under each cutoff. *)
  List.fold_left
    (fun t cutoff ->
      let rates = ref [] and ratios = ref [] in
      let _ =
        replicate cfg (fun ~seed g ->
            let users = Graph.users g in
            (match users with
            | u0 :: u1 :: _ -> (
                let capacity = Capacity.of_graph g in
                match
                  Routing.best_channel g cfg.Config.params ~capacity ~src:u0
                    ~dst:u1
                with
                | None -> ()
                | Some c -> (
                    let rng = Prng.create (seed + 5000) in
                    match
                      Qnet_sim.Decoherence.effective_rate rng g
                        cfg.Config.params c ~cutoff ~runs:300
                        ~max_slots:1_000_000
                    with
                    | None -> ()
                    | Some r ->
                        rates := r :: !rates;
                        ratios := (r /. Channel.rate_prob c) :: !ratios))
            | _ -> ());
            0.)
      in
      let mean l =
        match l with [] -> 0. | _ -> Stats.mean (Array.of_list l)
      in
      Table.add_row t
        [ string_of_int cutoff;
          Table.float_cell (mean !rates);
          Printf.sprintf "%.2fx" (mean !ratios) ])
    t cutoffs

let swap_policy ?(cfg = Config.default) ?(link_counts = [ 2; 4; 6; 8 ]) () =
  ignore cfg;
  (* Straight channels of n 3000-unit links: expected build slots under
     each swapping policy vs the synchronous Eq. (1) expectation. *)
  let params = Qnet_core.Params.create ~alpha:2e-4 ~q:0.9 () in
  let t =
    Table.create [ "links"; "synchronous 1/rate"; "linear"; "balanced" ]
  in
  List.fold_left
    (fun t n ->
      let b = Graph.Builder.create () in
      let user x = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:0 ~x ~y:0. in
      let switch x =
        Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:4 ~x ~y:0.
      in
      let u0 = user 0. in
      let relays =
        List.init (n - 1) (fun i -> switch (3000. *. float_of_int (i + 1)))
      in
      let u1 = user (3000. *. float_of_int n) in
      let path = (u0 :: relays) @ [ u1 ] in
      let rec wire = function
        | a :: (b' :: _ as rest) ->
            ignore (Graph.Builder.add_edge b a b' 3000.);
            wire rest
        | _ -> ()
      in
      wire path;
      let g = Graph.Builder.freeze b in
      let c = Channel.make_exn g params path in
      let est tree = Swap_policy.expected_slots_estimate g params c tree in
      Table.add_row t
        [ string_of_int n;
          Printf.sprintf "%.0f" (1. /. Channel.rate_prob c);
          Printf.sprintf "%.0f" (est (Swap_policy.linear n));
          Printf.sprintf "%.0f" (est (Swap_policy.balanced n)) ])
    t link_counts

let fusion_baselines ?(cfg = Config.default) () =
  (* Central-user star (the paper's N-FUSION reading) vs a Steiner
     fusion tree (the GHZ-distribution literature's approach), with
     Algorithm 3 as the BSM-tree reference. *)
  let t = Table.create [ "method"; "mean rate"; "feasible" ] in
  let row label solve =
    let feasible = ref 0 in
    let rate =
      replicate cfg (fun ~seed:_ g ->
          let r = solve g in
          if r > 0. then incr feasible;
          r)
    in
    (label, rate, !feasible)
  in
  let rows =
    [
      row "alg3 (BSM tree)" (fun g ->
          match Alg_conflict_free.solve g cfg.Config.params with
          | None -> 0.
          | Some tree -> Ent_tree.rate_prob tree);
      row "n-fusion (central-user star)" (fun g ->
          Qnet_baselines.Nfusion.rate
            (Qnet_baselines.Nfusion.solve g cfg.Config.params));
      row "ghz steiner fusion tree" (fun g ->
          Qnet_baselines.Ghz_steiner.rate
            (Qnet_baselines.Ghz_steiner.solve g cfg.Config.params));
    ]
  in
  List.fold_left
    (fun t (label, rate, feasible) ->
      Table.add_row t
        [ label;
          Table.float_cell rate;
          Printf.sprintf "%d/%d" feasible cfg.Config.replications ])
    t rows

let local_search_gain ?(cfg = Config.default) ?qubit_counts () =
  ignore qubit_counts;
  (* Edge exchange applied to each construction heuristic's output: how
     close to 1-exchange-optimal does each start? *)
  let t =
    Table.create
      [ "seed tree"; "base rate"; "after local search"; "mean exchanges" ]
  in
  let starts =
    [
      ( "alg3 (conflict-free)",
        fun g -> Alg_conflict_free.solve g cfg.Config.params );
      ( "alg4 (prim)",
        fun g -> Alg_prim.solve g cfg.Config.params );
      ( "e-q-cast chain",
        fun g -> Qnet_baselines.Eqcast.solve g cfg.Config.params );
    ]
  in
  List.fold_left
    (fun t (label, construct) ->
      let base = ref [] and improved = ref [] and moves = ref [] in
      let _ =
        replicate cfg (fun ~seed:_ g ->
            (match construct g with
            | None ->
                base := 0. :: !base;
                improved := 0. :: !improved
            | Some tree ->
                let better, stats =
                  Local_search.improve g cfg.Config.params tree
                in
                base := Ent_tree.rate_prob tree :: !base;
                improved := Ent_tree.rate_prob better :: !improved;
                moves :=
                  float_of_int stats.Local_search.exchanges :: !moves);
            0.)
      in
      let mean l =
        match l with [] -> 0. | _ -> Stats.mean (Array.of_list l)
      in
      Table.add_row t
        [ label;
          Table.float_cell (mean !base);
          Table.float_cell (mean !improved);
          Printf.sprintf "%.1f" (mean !moves) ])
    t starts

let all ?(cfg = Config.default) () =
  [
    ("Waxman distance-decay constant", waxman_alpha ~cfg ());
    ("E-Q-CAST chaining order", eqcast_order ~cfg ());
    ("N-FUSION fusion-success discount", nfusion_discount ~cfg ());
    ("k-best conflict resolution vs Algorithm 3", kbest_vs_alg3 ~cfg ());
    ("Purification rate/fidelity trade-off", purification_cost ~cfg ());
    ("Online scheduler under load", scheduler_load ~cfg ());
    ("Redundant backup channels", redundancy_boost ~cfg ());
    ("Memory-cutoff decoherence", decoherence_cutoff ~cfg ());
    ("Swapping-tree policies", swap_policy ~cfg ());
    ("Fusion baselines: star vs Steiner tree", fusion_baselines ~cfg ());
    ("Local-search post-optimisation", local_search_gain ~cfg ());
    ("Algorithm 4 start-user sensitivity", prim_start ~cfg ());
    ("Algorithm 2 qubit-boost convention", alg2_boost ~cfg ());
    ("Fidelity-aware routing threshold", fidelity_threshold ~cfg ());
    ("Multi-group allocation strategy", multi_group_strategy ~cfg ());
  ]
