type t = {
  spec : Qnet_topology.Spec.t;
  kind : Qnet_topology.Generate.kind;
  params : Qnet_core.Params.t;
  replications : int;
  base_seed : int;
  alg2_boost : bool;
}

let default =
  {
    spec = Qnet_topology.Spec.default;
    kind = Qnet_topology.Generate.waxman;
    params = Qnet_core.Params.default;
    replications = 20;
    base_seed = 1;
    alg2_boost = true;
  }

let create ?(spec = default.spec) ?(kind = default.kind)
    ?(params = default.params) ?(replications = default.replications)
    ?(base_seed = default.base_seed) ?(alg2_boost = default.alg2_boost) () =
  if replications <= 0 then invalid_arg "Config.create: replications <= 0";
  { spec; kind; params; replications; base_seed; alg2_boost }
