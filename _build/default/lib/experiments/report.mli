(** Rendering experiment results as text tables. *)

val series_table : Figures.series -> Qnet_util.Table.t
(** One row per method, one column per swept x value. *)

val series_to_string : Figures.series -> string
(** Title line plus the rendered table. *)

val series_to_csv : Figures.series -> string
(** CSV form of the same table. *)

val headlines_table : Figures.headline list -> Qnet_util.Table.t
(** Improvement-percentage summary (§V-B headline numbers). *)

val aggregate_table : Runner.aggregate list -> Qnet_util.Table.t
(** Detail view of one configuration: mean rate, feasibility count and
    solver time per method. *)
