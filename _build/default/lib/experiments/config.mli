(** Experiment configuration — the paper's §V-A defaults plus sweep
    knobs. *)

type t = {
  spec : Qnet_topology.Spec.t;  (** Network shape and qubit budgets. *)
  kind : Qnet_topology.Generate.kind;  (** Topology generator. *)
  params : Qnet_core.Params.t;  (** Physical model constants. *)
  replications : int;  (** Number of random networks averaged (paper:
                           20). *)
  base_seed : int;  (** Replication [i] uses seed [base_seed + i]. *)
  alg2_boost : bool;
      (** Fig. 8(a) footnote: when sweeping switch qubits, Algorithm 2
          is "not constrained by this" — its networks keep
          [Q = 2·|U|] qubits per switch.  When [true] (the default,
          matching the paper's evaluation), Algorithm 2 runs on a copy
          of each network with switch budgets raised to [2·|U|];
          the other algorithms and baselines see the configured
          budget. *)
}

val default : t
(** §V-A defaults: Waxman, 50 switches, 10 users, degree 6, 4 qubits,
    [q = 0.9], [alpha = 1e-4], 20 replications, base seed 1. *)

val create :
  ?spec:Qnet_topology.Spec.t ->
  ?kind:Qnet_topology.Generate.kind ->
  ?params:Qnet_core.Params.t ->
  ?replications:int ->
  ?base_seed:int ->
  ?alg2_boost:bool ->
  unit ->
  t
(** {!default} with overrides.  @raise Invalid_argument on
    [replications <= 0]. *)
