lib/experiments/runner.ml: Array Config Ent_tree Hashtbl List Muerp Qnet_baselines Qnet_core Qnet_graph Qnet_topology Qnet_util Unix
