lib/experiments/report.mli: Figures Qnet_util Runner
