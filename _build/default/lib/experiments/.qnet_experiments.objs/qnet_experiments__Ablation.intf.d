lib/experiments/ablation.mli: Config Qnet_util
