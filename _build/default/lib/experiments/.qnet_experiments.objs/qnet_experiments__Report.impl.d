lib/experiments/report.ml: Figures List Printf Qnet_util Runner
