lib/experiments/config.ml: Qnet_core Qnet_topology
