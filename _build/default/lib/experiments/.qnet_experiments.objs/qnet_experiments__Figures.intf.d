lib/experiments/figures.mli: Config Runner
