lib/experiments/config.mli: Qnet_core Qnet_topology
