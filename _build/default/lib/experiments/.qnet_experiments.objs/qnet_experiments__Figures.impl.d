lib/experiments/figures.ml: Array Config List Printf Qnet_core Qnet_graph Qnet_topology Qnet_util Runner
