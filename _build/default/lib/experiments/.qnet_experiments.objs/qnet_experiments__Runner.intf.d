lib/experiments/runner.mli: Config Qnet_core Qnet_graph Qnet_util
