module Table = Qnet_util.Table

let series_table (s : Figures.series) =
  let t = Table.create (s.x_header :: s.x_values) in
  List.fold_left
    (fun t (m, rates) -> Table.add_float_row t (Runner.method_name m) rates)
    t s.rows

let series_to_string s =
  Printf.sprintf "%s [%s]\n%s" s.Figures.title s.Figures.id
    (Table.to_string (series_table s))

let series_to_csv s = Table.to_csv (series_table s)

let headlines_table headlines =
  let t = Table.create [ "algorithm"; "baseline"; "best improvement"; "at" ] in
  List.fold_left
    (fun t (h : Figures.headline) ->
      Table.add_row t
        [
          Runner.method_name h.algorithm;
          Runner.method_name h.baseline;
          (if h.best_improvement_pct = neg_infinity then "n/a"
           else Printf.sprintf "%.0f%%" h.best_improvement_pct);
          h.at;
        ])
    t headlines

let aggregate_table aggregates =
  let t =
    Table.create
      [ "method"; "mean rate"; "feasible"; "mean rate|feasible"; "time (ms)" ]
  in
  List.fold_left
    (fun t (a : Runner.aggregate) ->
      Table.add_row t
        [
          Runner.method_name a.method_;
          Table.float_cell a.mean_rate;
          Printf.sprintf "%d/%d" a.feasible a.replications;
          (match a.mean_feasible_rate with
          | None -> "-"
          | Some r -> Table.float_cell r);
          Printf.sprintf "%.2f" (a.mean_elapsed_s *. 1000.);
        ])
    t aggregates
