module Graph = Qnet_graph.Graph
module Steiner = Qnet_graph.Steiner
open Qnet_core

type result = {
  tree_edges : Graph.edge list;
  fusion_switches : (int * int) list;
  total_rate : float;
  total_neg_log : float;
}

let solve ?(params = Nfusion.default_params) g qparams =
  if params.Nfusion.fusion_discount <= 0. || params.Nfusion.fusion_discount > 1.
  then invalid_arg "Ghz_steiner.solve: fusion_discount outside (0, 1]";
  let users = Graph.users g in
  match users with
  | [] | [ _ ] ->
      Some
        {
          tree_edges = [];
          fusion_switches = [];
          total_rate = 1.;
          total_neg_log = 0.;
        }
  | _ -> (
      (* Maximum-product Steiner tree: KMB under -log link rates. *)
      let weight (e : Graph.edge) = Params.link_neg_log qparams e.length in
      match Steiner.kmb g ~terminals:users ~weight with
      | None -> None
      | Some { Steiner.tree_edges; _ } -> (
          (* Vertex degrees within the tree. *)
          let degree = Hashtbl.create 16 in
          let bump v =
            Hashtbl.replace degree v
              (1 + (try Hashtbl.find degree v with Not_found -> 0))
          in
          List.iter
            (fun (e : Graph.edge) ->
              bump e.a;
              bump e.b)
            tree_edges;
          let q_fusion =
            params.Nfusion.fusion_discount *. qparams.Params.q
          in
          let exception Infeasible in
          try
            let link_neg_log =
              List.fold_left
                (fun acc (e : Graph.edge) -> acc +. weight e)
                0. tree_edges
            in
            let fusion_switches = ref [] in
            let fusion_neg_log = ref 0. in
            Hashtbl.iter
              (fun v d ->
                if d >= 2 then begin
                  (* Internal vertex fuses its d pairs.  Users have
                     ample memory by assumption (they fuse in Nfusion's
                     star too); switches need d qubits. *)
                  if Graph.is_switch g v && Graph.qubits g v < d then
                    raise Infeasible;
                  fusion_switches := (v, d) :: !fusion_switches;
                  if q_fusion <= 0. then raise Infeasible
                  else
                    fusion_neg_log :=
                      !fusion_neg_log
                      +. (float_of_int (d - 1) *. -.log q_fusion)
                end)
              degree;
            let total_neg_log = link_neg_log +. !fusion_neg_log in
            Some
              {
                tree_edges;
                fusion_switches = List.sort compare !fusion_switches;
                total_rate = exp (-.total_neg_log);
                total_neg_log;
              }
          with Infeasible -> None))

let rate = function None -> 0. | Some r -> r.total_rate
