lib/baselines/eqcast.mli: Qnet_core Qnet_graph
