lib/baselines/ghz_steiner.ml: Hashtbl List Nfusion Params Qnet_core Qnet_graph
