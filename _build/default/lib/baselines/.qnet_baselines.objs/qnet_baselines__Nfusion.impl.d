lib/baselines/nfusion.ml: Capacity Channel Ent_tree List Params Qnet_core Qnet_graph Qnet_util Routing
