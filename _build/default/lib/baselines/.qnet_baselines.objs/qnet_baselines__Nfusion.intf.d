lib/baselines/nfusion.mli: Qnet_core Qnet_graph
