lib/baselines/eqcast.ml: Capacity Ent_tree List Qnet_core Qnet_graph Routing
