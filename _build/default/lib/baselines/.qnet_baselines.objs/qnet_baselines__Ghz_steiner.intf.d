lib/baselines/ghz_steiner.mli: Nfusion Qnet_core Qnet_graph
