(** GHZ distribution over a Steiner fusion tree — a stronger fusion
    baseline than {!Nfusion}.

    The multipartite-distribution literature the paper surveys
    (Bugalho et al., Quantum 2023; Ghaderibaneh et al., QCE 2023)
    distributes an n-GHZ state over a {e tree of switches}: every tree
    edge carries a Bell pair, every internal {e switch} of the tree
    fuses its incident pairs with a GHZ projective measurement, and the
    leaves are the users.  Compared to {!Nfusion}'s central-user star,
    the fusion points sit inside the network, so pairs are shorter.

    Model, consistent with {!Nfusion}:

    - the tree is a {!Qnet_graph.Steiner} KMB tree over the users in
      −log-rate edge weights (maximum-product Steiner heuristic);
    - every tree edge (fiber) generates a Bell pair at
      [exp (−α·L)];
    - every internal vertex of the tree fuses its [d ≥ 2] incident
      pairs at success [q_fusion^(d−1)] ([q_fusion = discount · q],
      discount as in {!Nfusion}); degree-2 relays thus perform an
      ordinary-swap-strength 2-fusion; users may fuse (they hold ample
      memory by the paper's assumption, exactly as {!Nfusion}'s central
      user does);
    - a switch needs one memory qubit per incident tree edge; the
      instance is infeasible when some tree switch lacks them. *)

type result = {
  tree_edges : Qnet_graph.Graph.edge list;  (** The fusion tree. *)
  fusion_switches : (int * int) list;
      (** [(vertex, incident_degree)] for every fusing vertex (switch
          or user). *)
  total_rate : float;
  total_neg_log : float;
}

val solve :
  ?params:Nfusion.params ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  result option
(** Build and score the fusion tree; [None] when the Steiner tree does
    not exist or violates some switch's memory. *)

val rate : result option -> float
(** Total rate; [0.] for [None]. *)
