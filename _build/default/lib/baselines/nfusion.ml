module Graph = Qnet_graph.Graph
open Qnet_core

type params = { fusion_discount : float }

let default_params = { fusion_discount = 0.75 }

type result = {
  center : int;
  star : Ent_tree.t;
  fusion_neg_log : float;
  total_rate : float;
  total_neg_log : float;
}

(* Route the star from one candidate center under fresh capacities:
   channels are committed one user at a time in descending-rate order so
   the cheapest spokes grab scarce switch qubits first. *)
let route_star g params ~center others =
  let capacity = Capacity.of_graph g in
  let rec attach pending acc =
    if pending = [] then Some (List.rev acc)
    else begin
      let candidates = Routing.best_channels_from g params ~capacity ~src:center in
      let viable =
        List.filter (fun (u, _) -> List.mem u pending) candidates
      in
      match viable with
      | [] -> None
      | _ ->
          let _, best =
            List.fold_left
              (fun ((_, (bc : Channel.t)) as b) ((_, (c : Channel.t)) as cand) ->
                if
                  Qnet_util.Logprob.compare_desc c.rate bc.rate < 0
                then cand
                else b)
              (List.hd viable) (List.tl viable)
          in
          let user =
            if best.src = center then best.dst else best.src
          in
          Capacity.consume_channel capacity best.path;
          attach (List.filter (fun u -> u <> user) pending) (best :: acc)
    end
  in
  attach others []

let fusion_neg_log_of ~q_fusion ~spokes =
  (* Fusing m links costs q_fusion^(m-1); a single spoke (two users
     total) needs no fusion at all. *)
  if spokes <= 1 then 0.
  else if q_fusion <= 0. then infinity
  else float_of_int (spokes - 1) *. -.log q_fusion

let solve ?(params = default_params) g qparams =
  if params.fusion_discount <= 0. || params.fusion_discount > 1. then
    invalid_arg "Nfusion.solve: fusion_discount outside (0, 1]";
  let users = Graph.users g in
  match users with
  | [] | [ _ ] ->
      Some
        {
          center = (match users with [ u ] -> u | _ -> -1);
          star = Ent_tree.of_channels [];
          fusion_neg_log = 0.;
          total_rate = 1.;
          total_neg_log = 0.;
        }
  | _ ->
      let q_fusion = params.fusion_discount *. qparams.Params.q in
      let consider best center =
        let others = List.filter (fun u -> u <> center) users in
        match route_star g qparams ~center others with
        | None -> best
        | Some channels ->
            let star = Ent_tree.of_channels channels in
            let fusion_neg_log =
              fusion_neg_log_of ~q_fusion ~spokes:(List.length channels)
            in
            let total_neg_log =
              Ent_tree.rate_neg_log star +. fusion_neg_log
            in
            let candidate =
              {
                center;
                star;
                fusion_neg_log;
                total_rate = (if total_neg_log = infinity then 0. else exp (-.total_neg_log));
                total_neg_log;
              }
            in
            (match best with
            | Some b when b.total_neg_log <= candidate.total_neg_log -> best
            | _ -> Some candidate)
      in
      List.fold_left consider None users

let rate = function None -> 0. | Some r -> r.total_rate
