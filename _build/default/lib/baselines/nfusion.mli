(** N-FUSION — the paper's second comparison baseline (§V-A).

    Models the MP-P-style GHZ distribution of Sutcliffe & Beghelli
    (arXiv:2303.03334) under limited switch capacity: a {e central user}
    routes one maximum-rate channel to every other user (a star — "Tree
    B" of their Fig. 3), and the center then fuses its local qubits into
    an n-GHZ state with a GHZ projective measurement.

    Fusion model: fusing [m ≥ 2] quantum links succeeds with probability
    [q_fusion^(m−1)], where [q_fusion < q] reflects §I's observation
    that GHZ measurements have a lower success rate than BSMs (default
    [q_fusion = 0.75 · q]).  Channels to the center still use BSM swaps
    at rate [q] at their interior switches.  The central user fuses
    [m = |U| − 1] links, contributing [q_fusion^(|U|−2)]; with [|U| = 2]
    the scheme degenerates to a single channel with no fusion penalty,
    matching "BSM = 2-fusion".

    The center is chosen to maximise the resulting total rate (every
    user is tried); a center whose star cannot be routed under the
    capacities is skipped.  If no center works the entanglement fails —
    which is exactly how the paper's Fig. 5 shows N-FUSION failing on
    Watts–Strogatz graphs. *)

type params = {
  fusion_discount : float;
      (** [q_fusion = fusion_discount · q]; default 0.75, must lie in
          (0, 1]. *)
}

val default_params : params

type result = {
  center : int;  (** The chosen central user. *)
  star : Qnet_core.Ent_tree.t;  (** The routed star channels. *)
  fusion_neg_log : float;  (** [−ln] of the fusion success factor. *)
  total_rate : float;  (** Star rate × fusion factor, as probability. *)
  total_neg_log : float;
}

val solve :
  ?params:params ->
  Qnet_graph.Graph.t ->
  Qnet_core.Params.t ->
  result option
(** Best-center N-FUSION solution, or [None] when no center can reach
    every user under the switch capacities. *)

val rate : result option -> float
(** Total entanglement rate; [0.] for [None]. *)
