(** Minimum spanning trees/forests.

    Used by the classic-graph comparisons in DESIGN.md's ablation
    studies and by the degree-constrained reductions in {!Dcst}:
    the paper proves MUERP hardness by reduction from degree-constrained
    (minimum) spanning trees, so having the unconstrained optimum around
    lets tests quantify what the degree/capacity constraint costs. *)

val kruskal :
  Graph.t -> weight:(Graph.edge -> float) -> Graph.edge list
(** Minimum spanning forest by Kruskal's algorithm; returns the chosen
    edges (a spanning tree when the graph is connected). *)

val prim :
  Graph.t -> weight:(Graph.edge -> float) -> root:int -> Graph.edge list
(** Minimum spanning tree of [root]'s component by Prim's algorithm. *)

val total_weight : weight:(Graph.edge -> float) -> Graph.edge list -> float
(** Sum of weights over a chosen edge set. *)

val is_spanning_tree : Graph.t -> Graph.edge list -> bool
(** Whether the edges connect all vertices acyclically ([|V| - 1] edges
    forming one component). *)
