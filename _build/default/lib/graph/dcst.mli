(** Degree-constrained spanning trees — the NP-hardness anchors of §III-B.

    Theorem 1 of the paper reduces the Degree-Constrained Spanning Tree
    Problem (DCSTP) to MUERP feasibility; Theorem 2 reduces the
    Degree-Constrained Minimum Spanning Tree (DCMST) to MUERP
    optimisation.  This module provides exact (exponential,
    small-instance) solvers for both so that tests can instantiate the
    reductions and check them end-to-end against the MUERP solvers. *)

val exists_spanning_tree_with_max_degree :
  Graph.t -> max_degree:int -> bool
(** Exact DCSTP decision by backtracking over spanning-tree edge
    choices.  Exponential in the worst case — intended for the small
    instances used in tests (≤ ~12 vertices, modest edge counts). *)

val find_spanning_tree_with_max_degree :
  Graph.t -> max_degree:int -> Graph.edge list option
(** Like the decision form, but returns a witness tree. *)

val min_spanning_tree_with_max_degree :
  Graph.t ->
  max_degree:int ->
  weight:(Graph.edge -> float) ->
  (Graph.edge list * float) option
(** Exact DCMST by exhaustive branch-and-bound over edge subsets.
    Returns a minimum-weight degree-bounded spanning tree and its
    weight, or [None] if no degree-bounded spanning tree exists. *)

val max_tree_degree : Graph.edge list -> int
(** Largest vertex degree within an edge set ([0] for the empty set). *)
