lib/graph/dcst.mli: Graph
