lib/graph/dcst.ml: Array Float Graph Hashtbl List Option
