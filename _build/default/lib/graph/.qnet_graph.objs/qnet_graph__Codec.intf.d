lib/graph/codec.mli: Graph Qnet_util
