lib/graph/codec.ml: Fun Graph List Printf Qnet_util Result
