lib/graph/paths.ml: Array Binary_heap Graph List Queue Union_find
