lib/graph/mst.ml: Array Binary_heap Float Graph List Union_find
