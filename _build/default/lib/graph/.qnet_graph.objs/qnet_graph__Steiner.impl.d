lib/graph/steiner.ml: Array Float Graph Hashtbl Int List Paths Set Union_find
