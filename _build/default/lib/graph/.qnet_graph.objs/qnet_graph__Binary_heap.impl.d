lib/graph/binary_heap.ml: Array
