lib/graph/svg.mli: Graph
