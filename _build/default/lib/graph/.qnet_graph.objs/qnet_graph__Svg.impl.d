lib/graph/svg.ml: Array Buffer Float Fun Graph List Printf
