lib/graph/dot.ml: Array Buffer Graph List Printf
