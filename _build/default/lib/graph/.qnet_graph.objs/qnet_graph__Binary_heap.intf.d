lib/graph/binary_heap.mli:
