let palette =
  [| "#d62728"; "#1f77b4"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let to_dot ?(highlight_paths = []) ?(graph_name = "qnet") g =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "graph %s {\n" graph_name;
  pr "  layout=neato;\n  overlap=false;\n";
  Graph.iter_vertices g (fun v ->
      let shape, label =
        match v.Graph.kind with
        | Graph.User -> ("circle", Printf.sprintf "u%d" v.Graph.id)
        | Graph.Switch ->
            ("box", Printf.sprintf "s%d\\nQ=%d" v.Graph.id v.Graph.qubits)
      in
      pr "  n%d [shape=%s, label=\"%s\", pos=\"%f,%f!\"];\n" v.Graph.id shape
        label (v.Graph.x /. 1000.) (v.Graph.y /. 1000.));
  Graph.iter_edges g (fun e ->
      pr "  n%d -- n%d [color=gray, label=\"%.0f\"];\n" e.Graph.a e.Graph.b
        e.Graph.length);
  List.iteri
    (fun i path ->
      let color = palette.(i mod Array.length palette) in
      let rec overlay = function
        | u :: (v :: _ as rest) ->
            if Graph.has_edge g u v then
              pr "  n%d -- n%d [color=\"%s\", penwidth=3];\n" u v color;
            overlay rest
        | [] | [ _ ] -> ()
      in
      overlay path)
    highlight_paths;
  pr "}\n";
  Buffer.contents buf
