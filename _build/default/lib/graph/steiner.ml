type result = { tree_edges : Graph.edge list; weight : float }

(* Connectivity of [vertices] using only [edges], via a union-find over
   the dense vertex ids. *)
let connects n edges vertices =
  let uf = Union_find.create n in
  List.iter (fun (e : Graph.edge) -> ignore (Union_find.union uf e.a e.b)) edges;
  Union_find.all_same uf vertices

let spans edges vertices =
  match vertices with
  | [] -> true
  | v :: _ ->
      let top =
        List.fold_left
          (fun acc (e : Graph.edge) -> max acc (max e.a e.b))
          v edges
      in
      let top = List.fold_left max top vertices in
      connects (top + 1) edges vertices

let tree_degree edges v =
  List.fold_left
    (fun acc (e : Graph.edge) ->
      if e.a = v || e.b = v then acc + 1 else acc)
    0 edges

module Edge_set = Set.Make (Int)

let kmb g ~terminals ~weight =
  (match terminals with
  | [] -> invalid_arg "Steiner.kmb: no terminals"
  | _ -> ());
  List.iter (fun t -> ignore (Graph.vertex g t)) terminals;
  match terminals with
  | [ _ ] -> Some { tree_edges = []; weight = 0. }
  | _ ->
      let terminals = List.sort_uniq compare terminals in
      (* Step 1: shortest paths from every terminal. *)
      let sssp =
        List.map
          (fun t -> (t, Paths.dijkstra g ~source:t ~weight ()))
          terminals
      in
      let reachable =
        List.for_all
          (fun (_, (r : Paths.dijkstra_result)) ->
            List.for_all (fun t -> r.dist.(t) < infinity) terminals)
          sssp
      in
      if not reachable then None
      else begin
        (* Step 2: MST of the metric closure via Prim over terminals. *)
        let dist_of t =
          let r = List.assoc t sssp in
          r
        in
        let in_tree = Hashtbl.create 8 in
        let first = List.hd terminals in
        Hashtbl.replace in_tree first ();
        let closure_edges = ref [] in
        for _ = 2 to List.length terminals do
          let best = ref None in
          List.iter
            (fun src ->
              if Hashtbl.mem in_tree src then
                let r = dist_of src in
                List.iter
                  (fun dst ->
                    if not (Hashtbl.mem in_tree dst) then
                      match !best with
                      | Some (d, _, _) when d <= r.Paths.dist.(dst) -> ()
                      | _ -> best := Some (r.Paths.dist.(dst), src, dst))
                  terminals)
            terminals;
          match !best with
          | None -> ()
          | Some (_, src, dst) ->
              Hashtbl.replace in_tree dst ();
              closure_edges := (src, dst) :: !closure_edges
        done;
        (* Step 3: expand closure edges into real paths, union edges. *)
        let expanded =
          List.fold_left
            (fun acc (src, dst) ->
              let r = dist_of src in
              match Paths.extract_path r ~source:src ~target:dst with
              | None -> acc
              | Some path ->
                  List.fold_left
                    (fun acc eid -> Edge_set.add eid acc)
                    acc (Paths.path_edges g path))
            Edge_set.empty !closure_edges
        in
        (* Step 4: MST of the expanded subgraph (Kruskal restricted to
           the expanded edges). *)
        let sub_edges =
          Edge_set.elements expanded
          |> List.map (Graph.edge g)
          |> List.sort (fun e1 e2 -> Float.compare (weight e1) (weight e2))
        in
        let uf = Union_find.create (Graph.vertex_count g) in
        let tree =
          List.filter
            (fun (e : Graph.edge) -> Union_find.union uf e.a e.b)
            sub_edges
        in
        (* Step 5: iteratively prune non-terminal leaves. *)
        let is_terminal = Hashtbl.create 8 in
        List.iter (fun t -> Hashtbl.replace is_terminal t ()) terminals;
        let rec prune tree =
          let leafy e v =
            tree_degree tree v = 1 && not (Hashtbl.mem is_terminal v)
            && (e.Graph.a = v || e.Graph.b = v)
          in
          let doomed =
            List.filter (fun e -> leafy e e.Graph.a || leafy e e.Graph.b) tree
          in
          if doomed = [] then tree
          else
            prune
              (List.filter
                 (fun e -> not (List.memq e doomed))
                 tree)
        in
        let tree = prune tree in
        Some
          {
            tree_edges = tree;
            weight = List.fold_left (fun acc e -> acc +. weight e) 0. tree;
          }
      end
