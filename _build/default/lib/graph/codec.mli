(** Persistence of quantum networks as s-expressions.

    Lets experiments pin down the exact network a result came from:
    the CLI's [topology --save] writes this format, [solve --load]
    re-reads it, and tests round-trip it.  The format is versioned and
    self-describing:

    {v
    (qnet-graph (version 1)
      (vertices (id kind qubits x y) ...)
      (edges (a b length) ...))
    v} *)

val graph_to_sexp : Graph.t -> Qnet_util.Sexp.t
(** Serialise a network. *)

val graph_of_sexp : Qnet_util.Sexp.t -> (Graph.t, string) result
(** Rebuild a network; errors describe the offending field.  Vertex ids
    must be dense and in order (as produced by {!graph_to_sexp}). *)

val save_graph : string -> Graph.t -> unit
(** [save_graph path g] writes the human-readable rendering to [path].
    @raise Sys_error on I/O failure. *)

val load_graph : string -> (Graph.t, string) result
(** Read a network back from disk (parse or validation errors are
    returned, I/O errors raised as [Sys_error]). *)
