(** Disjoint-set forest with path compression and union by rank.

    The paper's Algorithms 2–4 all track "which quantum users are already
    entangled into the same component" with a union–find structure; this
    is that structure. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val size : t -> int
(** Number of elements (not sets). *)

val find : t -> int -> int
(** [find t x] is the canonical representative of [x]'s set.
    @raise Invalid_argument on an out-of-range element. *)

val union : t -> int -> int -> bool
(** [union t x y] merges the sets of [x] and [y]; returns [true] if they
    were previously distinct. *)

val same : t -> int -> int -> bool
(** [same t x y] tests whether [x] and [y] share a set. *)

val count_sets : t -> int
(** Number of distinct sets currently present. *)

val set_size : t -> int -> int
(** [set_size t x] is the cardinality of [x]'s set. *)

val groups : t -> int list list
(** All current sets, each as a list of members; ordering is by smallest
    member within and across groups. *)

val all_same : t -> int list -> bool
(** [all_same t xs] is [true] iff every element of [xs] is in one set
    (vacuously true for [\[\]] and singletons). *)
