type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable sets : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    sets = n;
  }

let size t = Array.length t.parent

let check t x =
  if x < 0 || x >= Array.length t.parent then
    invalid_arg "Union_find: element out of range"

let rec find t x =
  check t x;
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry =
      if t.rank.(rx) < t.rank.(ry) then (ry, rx) else (rx, ry)
    in
    t.parent.(ry) <- rx;
    t.size.(rx) <- t.size.(rx) + t.size.(ry);
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    t.sets <- t.sets - 1;
    true
  end

let same t x y = find t x = find t y
let count_sets t = t.sets
let set_size t x = t.size.(find t x)

let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let all_same t = function
  | [] -> true
  | x :: rest ->
      let r = find t x in
      List.for_all (fun y -> find t y = r) rest
