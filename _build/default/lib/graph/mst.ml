let kruskal g ~weight =
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc e -> e :: acc)
    |> List.sort (fun e1 e2 -> Float.compare (weight e1) (weight e2))
  in
  let uf = Union_find.create (Graph.vertex_count g) in
  let pick acc (e : Graph.edge) =
    if Union_find.union uf e.a e.b then e :: acc else acc
  in
  List.rev (List.fold_left pick [] edges)

let prim g ~weight ~root =
  let n = Graph.vertex_count g in
  if root < 0 || root >= n then invalid_arg "Mst.prim: bad root";
  let in_tree = Array.make n false in
  let heap = Binary_heap.create ~capacity:(n + 1) () in
  let chosen = ref [] in
  let add_frontier u =
    in_tree.(u) <- true;
    List.iter
      (fun (v, eid) ->
        if not in_tree.(v) then
          Binary_heap.push heap (weight (Graph.edge g eid)) eid)
      (Graph.neighbors g u)
  in
  add_frontier root;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (_, eid) ->
        let e = Graph.edge g eid in
        let fresh =
          if in_tree.(e.a) && not in_tree.(e.b) then Some e.b
          else if in_tree.(e.b) && not in_tree.(e.a) then Some e.a
          else None
        in
        (match fresh with
        | Some v ->
            chosen := e :: !chosen;
            add_frontier v
        | None -> ());
        loop ()
  in
  loop ();
  List.rev !chosen

let total_weight ~weight edges =
  List.fold_left (fun acc e -> acc +. weight e) 0. edges

let is_spanning_tree g edges =
  let n = Graph.vertex_count g in
  List.length edges = n - 1
  &&
  let uf = Union_find.create n in
  List.for_all (fun (e : Graph.edge) -> Union_find.union uf e.a e.b) edges
  && Union_find.count_sets uf = 1
