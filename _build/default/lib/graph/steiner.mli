(** Steiner-tree heuristic (Kou–Markowsky–Berman).

    §III-A of the paper contrasts MUERP with the graphical Steiner
    minimal tree: identical-looking except Steiner trees share edges
    freely and ignore vertex capacity.  This module implements the
    classic 2-approximation so examples and ablation benches can show
    concretely where the classic relaxation over-promises (a Steiner
    tree through a 2-qubit hub "connects" users a MUERP solution
    cannot). *)

type result = {
  tree_edges : Graph.edge list;  (** Edges of the Steiner tree. *)
  weight : float;  (** Total edge weight. *)
}

val kmb :
  Graph.t ->
  terminals:int list ->
  weight:(Graph.edge -> float) ->
  result option
(** [kmb g ~terminals ~weight] runs the KMB heuristic: build the metric
    closure over [terminals], take its MST, expand closure edges back
    into shortest paths, take an MST of the expanded subgraph, and prune
    non-terminal leaves.  Returns [None] when the terminals are not all
    mutually reachable.  @raise Invalid_argument on an empty or
    out-of-range terminal list. *)

val tree_degree : Graph.edge list -> int -> int
(** Degree of a vertex within a chosen edge set. *)

val spans : Graph.edge list -> int list -> bool
(** Whether an edge set connects all the listed vertices. *)
