(** Graphviz DOT export of quantum networks and routed solutions.

    Gives every example and CLI command a way to dump the topology (and
    optionally a set of highlighted channel paths) for offline
    visualisation with [dot -Tsvg].  Users render as circles, switches
    as boxes labelled with their qubit budget; highlighted paths get
    per-path colors. *)

val to_dot :
  ?highlight_paths:int list list ->
  ?graph_name:string ->
  Graph.t ->
  string
(** [to_dot g] is a complete [graph { … }] DOT document.
    [highlight_paths] draws each vertex path as a colored overlay (paths
    are vertex-id lists, as in {!Qnet_core.Channel.t.path}); invalid
    paths are rendered as far as their edges exist.  Node positions use
    the stored coordinates (scaled) as [pos] hints. *)
