let max_tree_degree edges =
  let tbl = Hashtbl.create 16 in
  let bump v =
    Hashtbl.replace tbl v (1 + (try Hashtbl.find tbl v with Not_found -> 0))
  in
  List.iter
    (fun (e : Graph.edge) ->
      bump e.a;
      bump e.b)
    edges;
  Hashtbl.fold (fun _ d acc -> max d acc) tbl 0

(* Exhaustive search over subsets of edges forming a spanning tree with
   bounded degree.  Components are tracked by an int array copied per
   accepted edge, which keeps backtracking trivial; instances are small
   by contract. *)
let search g ~max_degree ~weight ~minimize =
  let n = Graph.vertex_count g in
  if n = 0 then None
  else if max_degree < 1 && n > 1 then None
  else begin
    let edges =
      Graph.fold_edges g ~init:[] ~f:(fun acc e -> e :: acc)
      |> List.sort (fun e1 e2 -> Float.compare (weight e1) (weight e2))
      |> Array.of_list
    in
    let m = Array.length edges in
    let best : (Graph.edge list * float) option ref = ref None in
    let rec go idx comp degree chosen count w =
      let improves =
        match !best with
        | None -> true
        | Some (_, bw) -> minimize && w < bw
      in
      if improves then
        if count = n - 1 then best := Some (List.rev chosen, w)
        else if idx < m && m - idx >= n - 1 - count then begin
          let e = edges.(idx) in
          (* Branch 1: take the edge if it joins two components and
             respects the degree bound. *)
          if
            comp.(e.Graph.a) <> comp.(e.Graph.b)
            && degree.(e.Graph.a) < max_degree
            && degree.(e.Graph.b) < max_degree
          then begin
            let comp' = Array.copy comp in
            let from = comp'.(e.Graph.b) and into = comp'.(e.Graph.a) in
            Array.iteri (fun i c -> if c = from then comp'.(i) <- into) comp';
            degree.(e.Graph.a) <- degree.(e.Graph.a) + 1;
            degree.(e.Graph.b) <- degree.(e.Graph.b) + 1;
            go (idx + 1) comp' degree (e :: chosen) (count + 1)
              (w +. weight e);
            degree.(e.Graph.a) <- degree.(e.Graph.a) - 1;
            degree.(e.Graph.b) <- degree.(e.Graph.b) - 1
          end;
          (* Branch 2: skip the edge — unless we only want existence and
             already found a witness. *)
          let keep_searching = minimize || !best = None in
          if keep_searching then go (idx + 1) comp degree chosen count w
        end
    in
    go 0 (Array.init n (fun i -> i)) (Array.make n 0) [] 0 0.;
    !best
  end

let find_spanning_tree_with_max_degree g ~max_degree =
  if Graph.vertex_count g <= 1 then Some []
  else
    match search g ~max_degree ~weight:(fun _ -> 1.) ~minimize:false with
    | None -> None
    | Some (tree, _) -> Some tree

let exists_spanning_tree_with_max_degree g ~max_degree =
  Option.is_some (find_spanning_tree_with_max_degree g ~max_degree)

let min_spanning_tree_with_max_degree g ~max_degree ~weight =
  if Graph.vertex_count g <= 1 then Some ([], 0.)
  else search g ~max_degree ~weight ~minimize:true
