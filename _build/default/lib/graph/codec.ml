module Sexp = Qnet_util.Sexp

let kind_to_string = function Graph.User -> "user" | Graph.Switch -> "switch"

let kind_of_string = function
  | "user" -> Ok Graph.User
  | "switch" -> Ok Graph.Switch
  | other -> Error (Printf.sprintf "unknown vertex kind %S" other)

let graph_to_sexp g =
  let vertices = ref [] in
  Graph.iter_vertices g (fun v ->
      vertices :=
        Sexp.list
          [
            Sexp.int v.Graph.id;
            Sexp.atom (kind_to_string v.Graph.kind);
            Sexp.int v.Graph.qubits;
            Sexp.float v.Graph.x;
            Sexp.float v.Graph.y;
          ]
        :: !vertices);
  let edges = ref [] in
  Graph.iter_edges g (fun e ->
      edges :=
        Sexp.list
          [ Sexp.int e.Graph.a; Sexp.int e.Graph.b; Sexp.float e.Graph.length ]
        :: !edges);
  Sexp.list
    [
      Sexp.atom "qnet-graph";
      Sexp.list [ Sexp.atom "version"; Sexp.int 1 ];
      Sexp.list (Sexp.atom "vertices" :: List.rev !vertices);
      Sexp.list (Sexp.atom "edges" :: List.rev !edges);
    ]

let ( let* ) = Result.bind

let graph_of_sexp sexp =
  let* () =
    match sexp with
    | Sexp.List (Sexp.Atom "qnet-graph" :: _) -> Ok ()
    | _ -> Error "not a qnet-graph document"
  in
  let* version = Sexp.field sexp "version" in
  let* version = Sexp.to_int version in
  let* () =
    if version = 1 then Ok ()
    else Error (Printf.sprintf "unsupported version %d" version)
  in
  let* vertices = Sexp.field sexp "vertices" in
  let* edges = Sexp.field sexp "edges" in
  let as_items name = function
    | Sexp.List items -> Ok items
    | Sexp.Atom _ ->
        (* A single vertex/edge unwraps to its own list; re-wrap. *)
        Error (Printf.sprintf "%s section malformed" name)
  in
  (* field unwraps singletons: re-normalise both shapes. *)
  let normalise section =
    match section with
    | Sexp.List (Sexp.Atom _ :: _) -> [ section ] (* one row unwrapped *)
    | Sexp.List _ -> (
        match as_items "section" section with Ok l -> l | Error _ -> [])
    | Sexp.Atom _ -> []
  in
  let rows section =
    match section with
    | Sexp.List [] -> []
    | Sexp.List (Sexp.List _ :: _) -> normalise section
    | _ -> [ section ]
  in
  let vertex_rows = rows vertices in
  let edge_rows = rows edges in
  let b = Graph.Builder.create () in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | Sexp.List [ id; kind; qubits; x; y ] ->
            let* id = Sexp.to_int id in
            let* kind =
              match kind with
              | Sexp.Atom k -> kind_of_string k
              | Sexp.List _ -> Error "vertex kind must be an atom"
            in
            let* qubits = Sexp.to_int qubits in
            let* x = Sexp.to_float x in
            let* y = Sexp.to_float y in
            let assigned =
              try Ok (Graph.Builder.add_vertex b ~kind ~qubits ~x ~y)
              with Invalid_argument msg -> Error msg
            in
            let* assigned = assigned in
            if assigned <> id then
              Error
                (Printf.sprintf "vertex ids must be dense: expected %d, got %d"
                   assigned id)
            else Ok ()
        | _ -> Error "malformed vertex row")
      (Ok ()) vertex_rows
  in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | Sexp.List [ a; bb; length ] ->
            let* a = Sexp.to_int a in
            let* bb = Sexp.to_int bb in
            let* length = Sexp.to_float length in
            (try
               ignore (Graph.Builder.add_edge b a bb length);
               Ok ()
             with Invalid_argument msg -> Error msg)
        | _ -> Error "malformed edge row")
      (Ok ()) edge_rows
  in
  Ok (Graph.Builder.freeze b)

let save_graph path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sexp.to_string_hum (graph_to_sexp g));
      output_char oc '\n')

let load_graph path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Sexp.of_string content with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok sexp -> graph_of_sexp sexp
