let palette =
  [| "#d62728"; "#1f77b4"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let render ?(width = 800) ?(highlight_paths = []) ?title g =
  let n = Graph.vertex_count g in
  (* Bounding box of the embedded coordinates, with a margin. *)
  let min_x = ref infinity and max_x = ref neg_infinity in
  let min_y = ref infinity and max_y = ref neg_infinity in
  Graph.iter_vertices g (fun v ->
      min_x := Float.min !min_x v.Graph.x;
      max_x := Float.max !max_x v.Graph.x;
      min_y := Float.min !min_y v.Graph.y;
      max_y := Float.max !max_y v.Graph.y);
  if n = 0 then begin
    min_x := 0.;
    max_x := 1.;
    min_y := 0.;
    max_y := 1.
  end;
  let span_x = Float.max 1e-9 (!max_x -. !min_x) in
  let span_y = Float.max 1e-9 (!max_y -. !min_y) in
  let margin = 40. in
  let w = float_of_int width in
  let h = (w -. (2. *. margin)) *. span_y /. span_x +. (2. *. margin) in
  let sx x = margin +. ((x -. !min_x) /. span_x *. (w -. (2. *. margin))) in
  (* SVG's y axis grows downward; flip so the plot reads like a map. *)
  let sy y = h -. margin -. ((y -. !min_y) /. span_y *. (h -. (2. *. margin))) in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n"
    width h w h;
  pr "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n";
  (match title with
  | Some t ->
      pr
        "<text x=\"%.1f\" y=\"20\" font-family=\"sans-serif\" \
         font-size=\"14\" text-anchor=\"middle\">%s</text>\n"
        (w /. 2.) t
  | None -> ());
  (* Fibers. *)
  Graph.iter_edges g (fun e ->
      let va = Graph.vertex g e.Graph.a and vb = Graph.vertex g e.Graph.b in
      pr
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"#cccccc\" stroke-width=\"1\"/>\n"
        (sx va.Graph.x) (sy va.Graph.y) (sx vb.Graph.x) (sy vb.Graph.y));
  (* Channel overlays. *)
  List.iteri
    (fun i path ->
      let color = palette.(i mod Array.length palette) in
      let rec segments = function
        | u :: (v :: _ as rest) ->
            if Graph.has_edge g u v then begin
              let vu = Graph.vertex g u and vv = Graph.vertex g v in
              pr
                "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                 stroke=\"%s\" stroke-width=\"3\" stroke-opacity=\"0.8\"/>\n"
                (sx vu.Graph.x) (sy vu.Graph.y) (sx vv.Graph.x)
                (sy vv.Graph.y) color
            end;
            segments rest
        | [] | [ _ ] -> ()
      in
      segments path)
    highlight_paths;
  (* Vertices on top. *)
  Graph.iter_vertices g (fun v ->
      let x = sx v.Graph.x and y = sy v.Graph.y in
      match v.Graph.kind with
      | Graph.User ->
          pr
            "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"9\" fill=\"#1f77b4\" \
             stroke=\"black\"/>\n"
            x y;
          pr
            "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" \
             font-size=\"9\" fill=\"white\" text-anchor=\"middle\" \
             dominant-baseline=\"central\">u%d</text>\n"
            x y v.Graph.id
      | Graph.Switch ->
          let side = 8. +. Float.min 8. (float_of_int v.Graph.qubits) in
          pr
            "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
             fill=\"#eeeeee\" stroke=\"#555555\"/>\n"
            (x -. (side /. 2.))
            (y -. (side /. 2.))
            side side;
          pr
            "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" \
             font-size=\"7\" fill=\"#333333\" text-anchor=\"middle\" \
             dominant-baseline=\"central\">%d</text>\n"
            x y v.Graph.qubits);
  pr "</svg>\n";
  Buffer.contents buf

let save ?width ?highlight_paths ?title path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width ?highlight_paths ?title g))
