type 'a entry = { key : float; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int; capacity : int }

let create ?(capacity = 16) () = { data = [||]; len = 0; capacity = max capacity 1 }
let length h = h.len
let is_empty h = h.len = 0

(* The backing array is allocated lazily on first push so no dummy
   element of type ['a] is ever needed. *)
let ensure_room h seed =
  if Array.length h.data = 0 then h.data <- Array.make h.capacity seed
  else if h.len = Array.length h.data then begin
    let data = Array.make (2 * h.len) h.data.(0) in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l).key < h.data.(!smallest).key then smallest := l;
  if r < h.len && h.data.(r).key < h.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h key value =
  let entry = { key; value } in
  ensure_room h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let peek_min h = if h.len = 0 then None else Some (h.data.(0).key, h.data.(0).value)
let clear h = h.len <- 0
