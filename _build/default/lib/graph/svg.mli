(** Self-contained SVG rendering of quantum networks.

    {!Dot} needs an external Graphviz install to produce an image; this
    module draws the network directly (coordinates are physical, so no
    layout pass is needed): fibers as gray lines, switches as squares
    sized by qubit budget, users as labelled circles, and optional
    channel overlays in distinct colors.  The output is a complete SVG
    document viewable in any browser. *)

val render :
  ?width:int ->
  ?highlight_paths:int list list ->
  ?title:string ->
  Graph.t ->
  string
(** [render g] produces the SVG document ([width] pixels wide, default
    800; height follows the network's aspect ratio).  [highlight_paths]
    draws vertex paths (as in {!Qnet_core.Channel.t.path}) as colored
    overlays; segments without a fiber are skipped. *)

val save :
  ?width:int ->
  ?highlight_paths:int list list ->
  ?title:string ->
  string ->
  Graph.t ->
  unit
(** [save path g] writes {!render} output to [path].
    @raise Sys_error on I/O failure. *)
