(* Fidelity-aware routing — the paper's headline extension (§VII).

   Quantum key distribution and error-corrected computation need more
   than raw entanglement: every channel must deliver pairs above a
   fidelity floor or the application-level error rate explodes.  This
   example routes the same user group under progressively stricter
   Werner-state fidelity thresholds and shows the rate/fidelity
   trade-off, then verifies the hop-bounded router against the
   unconstrained Algorithm 1.

   Run with:  dune exec examples/fidelity_routing.exe *)

module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
module Prng = Qnet_util.Prng
open Qnet_core

let () =
  let params = Params.default in
  let f0 = 0.98 in
  let rng = Prng.create 77 in
  let spec =
    Spec.create ~n_users:8 ~n_switches:40 ~avg_degree:6. ~qubits_per_switch:6
      ()
  in
  let g = Generate.run Generate.waxman rng spec in
  Format.printf "network: %a, link fidelity f0 = %.2f@.@." Qnet_graph.Graph.pp
    g f0;

  (* Unconstrained reference. *)
  let unconstrained =
    match Alg_conflict_free.solve g params with
    | Some t -> t
    | None -> failwith "reference instance should be feasible"
  in
  Format.printf
    "unconstrained alg3: rate %.4e, worst channel fidelity %.4f@.@."
    (Ent_tree.rate_prob unconstrained)
    (Fidelity.tree_min_fidelity ~f0 unconstrained);

  Format.printf "%-10s %-9s %-12s %-12s %s@." "threshold" "max hops"
    "kruskal rate" "prim rate" "worst fidelity (kruskal)";
  List.iter
    (fun threshold ->
      let config = { Fidelity.f0; threshold } in
      let hops =
        match Fidelity.max_hops ~f0 ~threshold ~max_considered:64 with
        | None -> "-"
        | Some h -> string_of_int h
      in
      let describe = function
        | None -> ("infeasible", "")
        | Some tree ->
            ( Printf.sprintf "%.4e" (Ent_tree.rate_prob tree),
              Printf.sprintf "%.4f" (Fidelity.tree_min_fidelity ~f0 tree) )
      in
      let k = Fidelity.solve_kruskal g params config in
      let p = Fidelity.solve_prim g params config in
      let k_rate, k_fid = describe k in
      let p_rate, _ = describe p in
      Format.printf "%-10.2f %-9s %-12s %-12s %s@." threshold hops k_rate
        p_rate k_fid)
    [ 0.5; 0.85; 0.9; 0.93; 0.95; 0.965 ];
  print_newline ();

  (* Each fidelity-constrained solution, when it exists, must never beat
     the unconstrained rate — demonstrate the invariant on this
     instance. *)
  let budget = Fidelity.max_hops ~f0 ~threshold:0.9 ~max_considered:64 in
  (match budget with
  | None -> ()
  | Some h ->
      Format.printf
        "a 0.90 threshold at f0 = %.2f limits channels to %d links; \
         channels in the unconstrained tree use up to %d links@."
        f0 h
        (List.fold_left
           (fun acc (c : Channel.t) -> max acc c.hops)
           0 unconstrained.Ent_tree.channels))
