(* Quickstart: build a small quantum network by hand, route a 3-user
   entanglement tree with each algorithm, and validate the result.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Qnet_graph.Graph
open Qnet_core

let () =
  (* A tiny topology mirroring Fig. 4(a) of the paper: three users
     around one switch, plus a relay path between Bob and Carol.

         Alice --- S0 --- Bob
                    \
                     Carol        S1 links Bob and Carol directly.  *)
  let b = Graph.Builder.create () in
  let add_user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:100 ~x ~y in
  let add_switch q x y =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:q ~x ~y
  in
  let alice = add_user 0. 0. in
  let bob = add_user 2000. 0. in
  let carol = add_user 1000. 1500. in
  let s0 = add_switch 4 1000. 200. in
  let s1 = add_switch 2 1600. 900. in
  let connect u v len = ignore (Graph.Builder.add_edge b u v len) in
  connect alice s0 1020.;
  connect bob s0 1020.;
  connect carol s0 1330.;
  connect bob s1 990.;
  connect carol s1 850.;
  let g = Graph.Builder.freeze b in
  Format.printf "network: %a@." Graph.pp g;

  let params = Params.create ~alpha:1e-4 ~q:0.9 () in
  let inst = Muerp.instance ~params g in

  let show alg =
    let outcome = Muerp.solve alg inst in
    (match outcome.tree with
    | None ->
        Format.printf "%s: infeasible@." (Muerp.algorithm_name alg)
    | Some tree ->
        Format.printf "%s: rate %.4f with %d channels@."
          (Muerp.algorithm_name alg) (Ent_tree.rate_prob tree)
          (Ent_tree.channel_count tree);
        List.iter
          (fun (c : Channel.t) -> Format.printf "  %a@." Channel.pp c)
          tree.channels;
        (* Independent validation. *)
        let users = Graph.users g in
        assert (Verify.is_valid g params ~users tree || alg = Muerp.Optimal));
    print_newline ()
  in
  List.iter show Muerp.all_heuristics;

  (* Sanity-check the analytic rate with the Monte-Carlo simulator. *)
  match (Muerp.solve Muerp.Conflict_free inst).tree with
  | None -> ()
  | Some tree ->
      let rng = Qnet_util.Prng.create 7 in
      let est =
        Qnet_sim.Monte_carlo.estimate_rate rng g params tree ~trials:100_000
      in
      Format.printf
        "Monte-Carlo check: analytic %.4f vs empirical %.4f (95%% CI [%.4f, %.4f])@."
        est.analytic est.p_hat est.ci_low est.ci_high
