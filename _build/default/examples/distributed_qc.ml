(* Distributed quantum computing — the paper's §I motivating scenario.

   A computation needs more qubits than any single monolithic processor
   offers, so several quantum computing processors (the users) must be
   entangled over the quantum Internet.  This example sizes a cluster,
   routes its entanglement with each algorithm, and then asks the
   question a datacenter operator would: how many synchronized network
   slots does it take before the whole cluster is entangled, and how
   does that scale with cluster size?

   Run with:  dune exec examples/distributed_qc.exe *)

module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
module Prng = Qnet_util.Prng
open Qnet_core

let processors_needed ~task_qubits ~per_processor =
  (task_qubits + per_processor - 1) / per_processor

let () =
  (* A task needing 500 logical qubits on 127-qubit processors (the
     paper cites IBM's 127-qubit chip as the monolithic ceiling). *)
  let per_processor = 127 in
  let task_qubits = 500 in
  let cluster = processors_needed ~task_qubits ~per_processor in
  Format.printf
    "task: %d qubits, processors hold %d each -> cluster of %d processors@.@."
    task_qubits per_processor cluster;

  let params = Params.default in
  let rng = Prng.create 2024 in
  let spec =
    Spec.create ~n_users:cluster ~n_switches:40 ~avg_degree:6.
      ~qubits_per_switch:6 ()
  in
  let g = Generate.run Generate.waxman rng spec in
  Format.printf "substrate: %a@.@." Qnet_graph.Graph.pp g;

  let inst = Muerp.instance ~params g in
  Format.printf "%-22s %-12s %-9s %s@." "algorithm" "rate" "channels"
    "expected slots (1/rate)";
  List.iter
    (fun alg ->
      let outcome = Muerp.solve alg inst in
      match outcome.tree with
      | None -> Format.printf "%-22s infeasible@." (Muerp.algorithm_name alg)
      | Some tree ->
          let rate = Ent_tree.rate_prob tree in
          Format.printf "%-22s %-12.6f %-9d %.0f@."
            (Muerp.algorithm_name alg) rate
            (Ent_tree.channel_count tree)
            (1. /. rate))
    Muerp.all_heuristics;
  print_newline ();

  (* Validate "expected slots" against the event-level protocol
     simulator: mean slots-to-success over many runs should approach
     1/rate (a geometric distribution). *)
  (match (Muerp.solve Muerp.Conflict_free inst).tree with
  | None -> ()
  | Some tree ->
      let rate = Ent_tree.rate_prob tree in
      let rng = Prng.create 99 in
      let runs = 2_000 in
      let samples =
        Array.init runs (fun _ ->
            match
              Qnet_sim.Monte_carlo.slots_until_success rng g params tree
                ~max_slots:1_000_000
            with
            | Some s -> float_of_int s
            | None -> nan)
      in
      let mean = Qnet_util.Stats.mean samples in
      Format.printf
        "protocol simulation: mean %.1f slots to entangle the cluster \
         (analytic expectation %.1f)@."
        mean (1. /. rate));
  print_newline ();

  (* How does the entanglement rate decay as the task grows? *)
  Format.printf "cluster-size scaling (alg3-conflict-free):@.";
  List.iter
    (fun n_users ->
      let rng = Prng.create (3_000 + n_users) in
      let spec =
        Spec.create ~n_users ~n_switches:40 ~avg_degree:6.
          ~qubits_per_switch:6 ()
      in
      let g = Generate.run Generate.waxman rng spec in
      let inst = Muerp.instance ~params g in
      let outcome = Muerp.solve Muerp.Conflict_free inst in
      Format.printf "  %2d processors: rate %.3e@." n_users outcome.rate)
    [ 2; 4; 6; 8; 10; 12 ]
