(* Topology study — how network structure shapes multi-user
   entanglement.

   Three investigations, echoing §V-B's observations:
   1. the same user population on four topology families;
   2. critical-edge analysis: which single fiber removals actually hurt
      the entanglement rate (the paper observes most removals change
      nothing because solutions concentrate on a few critical edges);
   3. the classic-graph trap of §III-A: a Steiner tree "connects" the
      users through a hub that MUERP capacity rules out.

   Run with:  dune exec examples/topology_study.exe *)

module Graph = Qnet_graph.Graph
module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
module Prng = Qnet_util.Prng
open Qnet_core

let () =
  (* 1. Topology families. *)
  let spec = Spec.create ~n_users:8 ~n_switches:36 ~qubits_per_switch:4 () in
  Format.printf "1. rate and structure by topology family (8 users, 36 switches):@.";
  List.iter
    (fun kind ->
      let rates =
        List.init 10 (fun i ->
            let rng = Prng.create (500 + i) in
            let g = Generate.run kind rng spec in
            let inst = Muerp.instance g in
            (Muerp.solve Muerp.Conflict_free inst).rate)
      in
      let metrics =
        Qnet_topology.Analysis.summarize
          (Generate.run kind (Prng.create 500) spec)
      in
      Format.printf "  %-15s mean rate %.3e (feasible %d/10)@."
        (Generate.name kind)
        (Qnet_util.Stats.mean (Array.of_list rates))
        (List.length (List.filter (fun r -> r > 0.) rates));
      Format.printf "  %-15s %a@." "" Qnet_topology.Analysis.pp_summary metrics)
    [ Generate.waxman; Generate.watts_strogatz; Generate.volchenkov;
      Generate.grid ];
  print_newline ();

  (* 2. Critical edges: remove each fiber alone and measure the drop. *)
  let rng = Prng.create 42 in
  let g = Generate.run Generate.waxman rng spec in
  let inst = Muerp.instance g in
  let base = (Muerp.solve Muerp.Conflict_free inst).rate in
  Format.printf "2. critical-edge analysis (base rate %.3e):@." base;
  let critical = ref 0 and harmless = ref 0 and helpful = ref 0 in
  Graph.iter_edges g (fun e ->
      let g' = Graph.remove_edges g [ e.Graph.eid ] in
      if Qnet_graph.Paths.users_connected g' then begin
        let rate = (Muerp.solve Muerp.Conflict_free (Muerp.instance g')).rate in
        if rate < base *. 0.999 then incr critical
        else if rate > base *. 1.001 then incr helpful
        else incr harmless
      end
      else incr critical);
  Format.printf
    "  of %d fibers: %d critical (removal hurts), %d harmless, %d helpful@."
    (Graph.edge_count g) !critical !harmless !helpful;
  Format.printf
    "  -> the solution depends on a small set of critical fibers, as \
     observed in Fig. 7(b)@.";
  print_newline ();

  (* 3. The Steiner-tree trap (paper Fig. 4): a 2-qubit hub. *)
  let b = Graph.Builder.create () in
  let user x y = Graph.Builder.add_vertex b ~kind:Graph.User ~qubits:100 ~x ~y in
  let u1 = user 0. 0. in
  let u2 = user 2000. 0. in
  let u3 = user 1000. 1800. in
  let hub =
    Graph.Builder.add_vertex b ~kind:Graph.Switch ~qubits:2 ~x:1000. ~y:600.
  in
  ignore (Graph.Builder.add_edge b u1 hub 1166.);
  ignore (Graph.Builder.add_edge b u2 hub 1166.);
  ignore (Graph.Builder.add_edge b u3 hub 1200.);
  let star = Graph.Builder.freeze b in
  Format.printf "3. the Steiner-tree trap (three users around a 2-qubit hub):@.";
  let terminals = Graph.users star in
  (match
     Qnet_graph.Steiner.kmb star ~terminals ~weight:(fun e -> e.Graph.length)
   with
  | Some r ->
      Format.printf
        "  classic Steiner tree: %d edges, weight %.0f — 'connects' all \
         three users@."
        (List.length r.tree_edges) r.weight
  | None -> Format.printf "  Steiner tree not found@.");
  let outcome = Muerp.solve Muerp.Conflict_free (Muerp.instance star) in
  Format.printf
    "  MUERP with a 2-qubit hub: %s — the hub supports one channel, not two@."
    (match outcome.tree with
    | None -> "infeasible"
    | Some t -> Printf.sprintf "feasible (rate %g)?!" (Ent_tree.rate_prob t))
