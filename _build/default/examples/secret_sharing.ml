(* Quantum secret sharing — a multi-user application from the paper's
   §I: a dealer splits a secret among participants such that only
   authorised coalitions can reconstruct it; all parties must first
   share multi-user entanglement.

   This example entangles a dealer with a growing conference of
   participants, compares the three MUERP algorithms against both
   baselines, and shows why two-user machinery (E-Q-CAST chaining) and
   GHZ fusion (N-FUSION) fall behind as the conference grows.

   Run with:  dune exec examples/secret_sharing.exe *)

module Spec = Qnet_topology.Spec
module Generate = Qnet_topology.Generate
module Runner = Qnet_experiments.Runner
module Prng = Qnet_util.Prng
open Qnet_core

let conference_rate ~participants ~seed method_ =
  (* Dealer + participants = users of the MUERP instance. *)
  let spec =
    Spec.create ~n_users:(1 + participants) ~n_switches:50 ~avg_degree:6.
      ~qubits_per_switch:4 ()
  in
  let rng = Prng.create seed in
  let g = Generate.run Generate.waxman rng spec in
  let rng_alg = Prng.create (seed * 31 + 7) in
  Runner.run_method g Params.default ~rng:rng_alg ~alg2_boost:true method_

let () =
  let seeds = List.init 10 (fun i -> 100 + i) in
  let sizes = [ 2; 4; 6; 8; 10 ] in
  Format.printf
    "mean entanglement rate for a dealer + N-participant conference@.";
  Format.printf "(10 random 50-switch networks per point)@.@.";
  Format.printf "%-14s" "method";
  List.iter (fun n -> Format.printf " %10s" (Printf.sprintf "N=%d" n)) sizes;
  Format.printf "@.";
  List.iter
    (fun method_ ->
      Format.printf "%-14s" (Runner.method_name method_);
      List.iter
        (fun participants ->
          let rates =
            List.map
              (fun seed -> conference_rate ~participants ~seed method_)
              seeds
          in
          let mean = Qnet_util.Stats.mean (Array.of_list rates) in
          Format.printf " %10.3e" mean)
        sizes;
      Format.printf "@.")
    Runner.all_methods;
  print_newline ();

  (* For the largest conference, show the tree the conflict-free
     algorithm actually builds, and check that no switch was
     oversubscribed — the guarantee secret sharing relies on, since a
     failed swap at an oversubscribed switch would leak timing
     information about the reconstruction attempt. *)
  let spec =
    Spec.create ~n_users:11 ~n_switches:50 ~avg_degree:6.
      ~qubits_per_switch:4 ()
  in
  let rng = Prng.create 104 in
  let g = Generate.run Generate.waxman rng spec in
  let inst = Muerp.instance g in
  match (Muerp.solve Muerp.Conflict_free inst).tree with
  | None -> Format.printf "11-user conference infeasible on this network@."
  | Some tree ->
      Format.printf "11-user conference tree (rate %.3e):@."
        (Ent_tree.rate_prob tree);
      List.iter
        (fun (c : Channel.t) -> Format.printf "  %a@." Channel.pp c)
        tree.channels;
      let usage = Ent_tree.qubit_usage tree in
      let worst =
        List.fold_left
          (fun acc (s, used) ->
            let q = Qnet_graph.Graph.qubits g s in
            if used > fst acc then (used, q) else acc)
          (0, 0) usage
      in
      Format.printf "busiest switch uses %d of %d qubits — capacity held@."
        (fst worst) (snd worst)
