examples/network_operator.mli:
