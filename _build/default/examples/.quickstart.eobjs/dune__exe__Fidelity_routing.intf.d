examples/fidelity_routing.mli:
