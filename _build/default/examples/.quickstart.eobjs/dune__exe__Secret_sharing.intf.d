examples/secret_sharing.mli:
