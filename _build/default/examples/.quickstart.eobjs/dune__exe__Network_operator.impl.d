examples/network_operator.ml: Channel Ent_tree Filename Format List Muerp Params Qnet_core Qnet_graph Qnet_sim Qnet_topology Qnet_util Redundancy String Sys Verify
