examples/quickstart.ml: Channel Ent_tree Format List Muerp Params Qnet_core Qnet_graph Qnet_sim Qnet_util Verify
