examples/topology_study.ml: Array Ent_tree Format List Muerp Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
