examples/fidelity_routing.ml: Alg_conflict_free Channel Ent_tree Fidelity Format List Params Printf Qnet_core Qnet_graph Qnet_topology Qnet_util
