examples/distributed_qc.mli:
