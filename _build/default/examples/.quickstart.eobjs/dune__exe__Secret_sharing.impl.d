examples/secret_sharing.ml: Array Channel Ent_tree Format List Muerp Params Printf Qnet_core Qnet_experiments Qnet_graph Qnet_topology Qnet_util
