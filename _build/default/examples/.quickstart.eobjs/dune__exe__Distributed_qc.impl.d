examples/distributed_qc.ml: Array Ent_tree Format List Muerp Params Qnet_core Qnet_graph Qnet_sim Qnet_topology Qnet_util
