examples/quickstart.mli:
