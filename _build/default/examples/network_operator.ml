(* A day in the life of a quantum-network operator.

   Ties the library's systems together end-to-end the way a real
   deployment would use them:

   1. commission a backbone (NSFNET reference topology), persist it to
      disk so tonight's results are reproducible;
   2. plan tomorrow's standing entanglement service (Algorithm 3),
      validate the plan and export a visualisation;
   3. stress-test the control plane: a day of stochastic entanglement
      requests through the online admission controller, under both
      drop and queue policies;
   4. capacity-upgrade analysis: would doubling switch memory pay off
      (redundant backup channels)?

   Run with:  dune exec examples/network_operator.exe *)

module Graph = Qnet_graph.Graph
module Prng = Qnet_util.Prng
module Scheduler = Qnet_sim.Scheduler
open Qnet_core

let () =
  (* 1. Commission the backbone. *)
  let rng = Prng.create 2026 in
  let g =
    Qnet_topology.Reference_nets.build rng Qnet_topology.Reference_nets.Nsfnet
      ~n_users:5 ~qubits_per_switch:6 ~user_qubits:1_000_000
  in
  let snapshot = Filename.temp_file "backbone" ".sexp" in
  Qnet_graph.Codec.save_graph snapshot g;
  Format.printf "1. backbone commissioned: %a@.   snapshot: %s@.@." Graph.pp g
    snapshot;

  (* 2. Plan the standing service. *)
  let params = Params.default in
  let inst = Muerp.instance ~params g in
  let outcome = Muerp.solve Muerp.Conflict_free inst in
  (match outcome.Muerp.tree with
  | None -> failwith "NSFNET with 5 users should be feasible"
  | Some tree ->
      Format.printf "2. standing service planned: rate %.4g, %d channels@."
        outcome.Muerp.rate
        (Ent_tree.channel_count tree);
      assert (Verify.is_valid g params ~users:(Graph.users g) tree);
      let dot =
        Qnet_graph.Dot.to_dot
          ~highlight_paths:
            (List.map (fun (c : Channel.t) -> c.path) tree.Ent_tree.channels)
          g
      in
      Format.printf "   plan verified; DOT export is %d bytes@.@."
        (String.length dot));

  (* 3. A day of requests through the controller. *)
  let workload seed =
    Scheduler.random_requests (Prng.create seed) g ~n:60 ~mean_gap:2.
      ~max_group:4 ~duration_range:(3, 10)
  in
  List.iter
    (fun (label, policy) ->
      let stats, _ = Scheduler.run ~policy g params ~requests:(workload 9) in
      Format.printf
        "3. %-12s accepted %d/%d (%.0f%%), mean rate %.4g, mean wait %.2f \
         slots@."
        label stats.Scheduler.accepted stats.Scheduler.arrived
        (100. *. stats.Scheduler.acceptance_ratio)
        stats.Scheduler.mean_accepted_rate stats.Scheduler.mean_wait_slots)
    [ ("drop", Scheduler.Drop); ("queue(5)", Scheduler.Queue 5) ];
  print_newline ();

  (* 4. Capacity-upgrade analysis. *)
  let boosted_rate g =
    match Redundancy.solve g params with
    | None -> 0.
    | Some r -> r.Redundancy.rate
  in
  let upgraded =
    Graph.with_qubits g (fun v ->
        match v.Graph.kind with
        | Graph.User -> v.Graph.qubits
        | Graph.Switch -> 2 * v.Graph.qubits)
  in
  Format.printf
    "4. upgrade analysis: with backup channels, today's memory gives rate \
     %.4g;@.   doubling switch memory gives %.4g@."
    (boosted_rate g) (boosted_rate upgraded);

  Sys.remove snapshot
